// Proteinnet demonstrates the paper's protein-interaction workflow: given
// several noisy interaction assays (yeast two-hybrid screens have high
// false-positive rates), clean them with Boolean graph queries —
// intersection and at-least-k-of-n — and then mine the consensus network
// for protein complexes as maximal cliques.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro"
)

const proteins = 120

func main() {
	rng := rand.New(rand.NewSource(7))

	// Ground truth: two protein complexes and a shared scaffold pair.
	truth := repro.NewGraph(proteins)
	repro.PlantClique(truth, []int{0, 1, 2, 3, 4, 5})
	repro.PlantClique(truth, []int{10, 11, 12, 13})
	truth.AddEdge(4, 10)

	// Four assays: each observes every true interaction with 85%
	// sensitivity and adds false positives at random.
	assays := make([]*repro.Graph, 4)
	for i := range assays {
		a := repro.NewGraph(proteins)
		truth.ForEachEdge(func(u, v int) bool {
			if rng.Float64() < 0.85 {
				a.AddEdge(u, v)
			}
			return true
		})
		for fp := 0; fp < 60; fp++ {
			u, v := rng.Intn(proteins), rng.Intn(proteins)
			if u != v {
				a.AddEdge(u, v)
			}
		}
		assays[i] = a
		fmt.Printf("assay %d: %d interactions\n", i+1, a.M())
	}

	union := repro.Union(assays...)
	strict := repro.Intersection(assays...)
	consensus := repro.AtLeastKOfN(2, assays...)
	fmt.Printf("union: %d edges; intersection: %d; at-least-2-of-4: %d (truth: %d)\n",
		union.M(), strict.M(), consensus.M(), truth.M())

	// Complexes = maximal cliques of the consensus network.
	fmt.Println("putative complexes (maximal cliques, size >= 3):")
	enum := repro.NewEnumerator(repro.WithBounds(3, 0))
	_, err := enum.Run(context.Background(), consensus, repro.ReporterFunc(func(c repro.Clique) {
		fmt.Printf("  %v\n", []int(c))
	}))
	if err != nil {
		log.Fatal(err)
	}

	// Precision/recall of the consensus edges against truth.
	tp, fp := 0, 0
	consensus.ForEachEdge(func(u, v int) bool {
		if truth.HasEdge(u, v) {
			tp++
		} else {
			fp++
		}
		return true
	})
	fn := truth.M() - tp
	fmt.Printf("consensus quality: %d true, %d false, %d missed\n", tp, fp, fn)
}
