// Footprint demonstrates the feedback-vertex-set application the paper's
// conclusions highlight: "In phylogenetic footprinting, for example, it
// is feedback vertex set that is the crucial combinatorial problem"
// (citing the footprint sorting problem of Fried et al.).
//
// Phylogenetic footprinting finds conserved regulatory elements by
// comparing promoter regions across species.  When the discovered
// elements are ordered along each promoter, inconsistencies between
// species (shuffled or spuriously matched elements) show up as cycles in
// the element precedence graph; discarding a minimum set of elements that
// breaks every cycle — a minimum feedback vertex set — restores a
// consistent cross-species ordering.
package main

import (
	"fmt"
	"math/rand"

	"repro"
)

const elements = 14

func main() {
	rng := rand.New(rand.NewSource(9))

	// Ground truth: elements 0..13 occur in this order in every genome.
	// Build the (undirected) conflict graph: an edge joins two elements
	// whose observed relative order disagrees between some pair of
	// species.  With clean data the graph is empty; noise and spurious
	// matches create conflict edges, and chained conflicts form cycles.
	g := repro.NewGraph(elements)

	// Simulate three species: each observes the true order with a few
	// local swaps and one spurious long-range match.
	trueOrder := make([]int, elements)
	for i := range trueOrder {
		trueOrder[i] = i
	}
	type obs struct{ order []int }
	var species []obs
	for s := 0; s < 3; s++ {
		order := append([]int(nil), trueOrder...)
		// Local swaps (alignment jitter).
		for swaps := 0; swaps < 2; swaps++ {
			i := rng.Intn(elements - 1)
			order[i], order[i+1] = order[i+1], order[i]
		}
		// One spurious relocation (a false motif match).
		from := rng.Intn(elements)
		to := rng.Intn(elements)
		v := order[from]
		order = append(order[:from], order[from+1:]...)
		order = append(order[:to], append([]int{v}, order[to:]...)...)
		species = append(species, obs{order})
	}

	// Conflict edges: element pair (a,b) whose order differs between any
	// two species.
	pos := func(order []int, v int) int {
		for i, x := range order {
			if x == v {
				return i
			}
		}
		return -1
	}
	for a := 0; a < elements; a++ {
		for b := a + 1; b < elements; b++ {
			dir := 0
			conflict := false
			for _, sp := range species {
				d := 1
				if pos(sp.order, a) > pos(sp.order, b) {
					d = -1
				}
				if dir == 0 {
					dir = d
				} else if d != dir {
					conflict = true
				}
			}
			if conflict {
				g.AddEdge(a, b)
			}
		}
	}
	fmt.Printf("conflict graph: %d elements, %d conflicting pairs\n", g.N(), g.M())

	set := repro.MinimumFeedbackVertexSet(g)
	fmt.Printf("minimum feedback vertex set: %v (%d elements discarded)\n", set, len(set))
	if !repro.IsFeedbackVertexSet(g, set) {
		panic("solver returned an invalid feedback vertex set")
	}
	fmt.Println("remaining conflict structure is acyclic: a consistent")
	fmt.Println("cross-species element ordering exists after discarding them")
}
