// Pathways demonstrates the extreme-pathway analysis the paper motivates
// as a core systems-biology application: enumerate all elementary flux
// modes of a small metabolic network (exact arithmetic, tableau/double-
// description algorithm) and verify each against the steady-state
// constraint S·v = 0.
//
// The network is a simplified core-carbon sketch: substrate uptake, a
// split into a high-yield and a fast low-yield branch, a reversible
// interconversion, and two secretion routes.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Metabolites (balanced, internal).
	const (
		G = iota // glucose-like substrate (internal pool)
		P        // pyruvate-like intermediate
		E        // energy carrier pool
		B        // byproduct
	)
	net := &repro.MetabolicNetwork{Metabolites: []string{"G", "P", "E", "B"}}

	// Reactions: index -> description.
	net.AddReaction("uptake", false, map[int]int64{G: 1})                  // -> G
	net.AddReaction("glycolysis", false, map[int]int64{G: -1, P: 2, E: 2}) // G -> 2P + 2E
	net.AddReaction("respire", false, map[int]int64{P: -1, E: 14})         // P -> 14E (high yield)
	net.AddReaction("ferment", false, map[int]int64{P: -1, B: 1})          // P -> B (fast, low yield)
	net.AddReaction("interconv", true, map[int]int64{P: -1, B: 1})         // P <-> B
	net.AddReaction("drainE", false, map[int]int64{E: -1})                 // E -> (maintenance)
	net.AddReaction("secreteB", false, map[int]int64{B: -1})               // B ->

	modes, err := repro.ElementaryFluxModes(net)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d metabolites, %d reactions\n",
		len(net.Metabolites), len(net.Reactions))
	fmt.Printf("elementary flux modes: %d\n", len(modes))
	for i, m := range modes {
		if err := repro.VerifyFluxMode(net, m); err != nil {
			log.Fatalf("mode %d failed verification: %v", i, err)
		}
		fmt.Printf("  EFM %d: %s\n", i+1, m)
	}
	fmt.Println("all modes satisfy S·v = 0 and irreversibility (verified exactly)")
}
