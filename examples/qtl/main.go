// QTL demonstrates the paper's quantitative-trait-loci workflow sketch:
// in a genetic reference population, transcripts co-regulated by shared
// polymorphic loci form highly connected sets in the trait-correlation
// graph.  The paper reports finding "approximately 7-10 polymorphic loci
// responsible for the regulation of a highly connected group of over
// 1950 transcripts" with Lin7c the most highly connected vertex.
//
// Here: synthesize strain expression data where a few simulated loci
// drive transcript modules, build the correlation graph, find the most
// highly connected transcript, and decompose the graph into paracliques
// (the dense-but-imperfect modules the paper extracts) through the
// Enumerator facade.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// 40 recombinant-inbred strains, 250 transcripts.  Three loci, each
	// regulating a transcript module; the first two modules share
	// transcripts (pleiotropy), mimicking trans-band structure.
	const strains, transcripts = 40, 250
	mods := []repro.ModuleSpec{
		{Genes: span(0, 30), Signal: 5},  // locus 1: large trans-band
		{Genes: span(20, 20), Signal: 5}, // locus 2: overlaps locus 1's band
		{Genes: span(60, 12), Signal: 5}, // locus 3
	}
	mat := repro.SynthesizeExpression(rng, repro.SyntheticConfig{
		Genes:      transcripts,
		Conditions: strains,
		Modules:    mods,
	})
	mat.Names = make([]string, transcripts)
	for i := range mat.Names {
		mat.Names[i] = fmt.Sprintf("Tx%03d", i)
	}
	mat.Names[25] = "Lin7c" // inside both overlapping modules
	mat.Normalize()

	g := repro.CorrelationGraph(mat, repro.SpearmanRank, 0.55)
	fmt.Printf("trait correlation graph: %d transcripts, %d edges\n", g.N(), g.M())

	// Most highly connected transcript (the paper's Lin7c observation).
	best, bestDeg := 0, -1
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > bestDeg {
			best, bestDeg = v, d
		}
	}
	fmt.Printf("most connected transcript: %s (degree %d)\n", g.Name(best), bestDeg)

	// Paraclique decomposition: the dense co-regulated groups.  The
	// WithBounds lower bound doubles as the minimum seed clique size.
	enum := repro.NewEnumerator(repro.WithBounds(5, 0))
	ps, err := enum.Paracliques(context.Background(), g, 0.85)
	if err != nil {
		log.Fatal(err)
	}
	if len(ps) == 0 {
		log.Fatal("no paracliques found; lower the threshold")
	}
	fmt.Printf("paracliques (glom 0.85):\n")
	for i, p := range ps {
		fmt.Printf("  #%d: %d transcripts (core clique %d, density %.2f)\n",
			i+1, len(p.Vertices), p.CoreSize, p.Density)
	}

	// Sanity: the loci count story — each paraclique maps to one or two
	// driving loci in this synthetic population.
	total := 0
	for _, p := range ps {
		total += len(p.Vertices)
	}
	fmt.Printf("transcripts covered by dense modules: %d of %d\n", total, g.N())
}

func span(start, count int) []int {
	out := make([]int, count)
	for i := range out {
		out[i] = start + i
	}
	return out
}
