// Quickstart: build a small graph, compute its maximum clique, and
// stream all maximal cliques in non-decreasing order of size — the
// paper's pipeline in its simplest form, through the repro.Enumerator
// facade.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	// The overlap graph of two gene modules sharing two genes, plus a
	// loosely attached pair — the kind of structure thresholded
	// co-expression data produces.
	g := repro.NewGraph(9)
	repro.PlantClique(g, []int{0, 1, 2, 3, 4}) // module 1
	repro.PlantClique(g, []int{3, 4, 5, 6})    // module 2 (shares 3, 4)
	g.AddEdge(6, 7)
	g.AddEdge(7, 8)

	// Step 1: the upper bound — maximum clique via branch-and-bound.
	omega := repro.MaxCliqueSize(g)
	fmt.Printf("maximum clique size: %d\n", omega)

	// Step 2: stream every maximal clique of size >= 3 in non-decreasing
	// order.  Cliques yielded by the iterator are owned copies.
	var st repro.Stats
	enum := repro.NewEnumerator(
		repro.WithBounds(3, omega),
		repro.WithStats(&st),
	)
	fmt.Println("maximal cliques (non-decreasing size):")
	for c, err := range enum.Cliques(context.Background(), g) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  size %d: %v\n", len(c), []int(c))
	}
	fmt.Printf("total: %d maximal cliques, peak candidate memory %d bytes\n",
		st.MaximalCliques, st.PeakBytes)
}
