// Quickstart: build a small graph, compute its maximum clique, and
// enumerate all maximal cliques in non-decreasing order of size — the
// paper's pipeline in its simplest form.
package main

import (
	"fmt"
	"log"

	"repro/internal/clique"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/maxclique"
)

func main() {
	// The overlap graph of two gene modules sharing two genes, plus a
	// loosely attached pair — the kind of structure thresholded
	// co-expression data produces.
	g := graph.New(9)
	graph.PlantClique(g, []int{0, 1, 2, 3, 4}) // module 1
	graph.PlantClique(g, []int{3, 4, 5, 6})    // module 2 (shares 3, 4)
	g.AddEdge(6, 7)
	g.AddEdge(7, 8)

	// Step 1: the upper bound — maximum clique via branch-and-bound.
	omega := maxclique.Size(g)
	fmt.Printf("maximum clique size: %d\n", omega)

	// Step 2: enumerate every maximal clique of size >= 3, in
	// non-decreasing order, with the Clique Enumerator.
	fmt.Println("maximal cliques (non-decreasing size):")
	res, err := core.Enumerate(g, core.Options{
		Lo: 3,
		Hi: omega,
		Reporter: clique.ReporterFunc(func(c clique.Clique) {
			fmt.Printf("  size %d: %v\n", len(c), []int(c))
		}),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total: %d maximal cliques, peak candidate memory %d bytes\n",
		res.MaximalCliques, res.PeakBytes)
}
