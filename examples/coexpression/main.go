// Coexpression reproduces the paper's primary application end to end at
// demonstration scale: synthesize a microarray expression matrix with
// planted co-expression modules (the stand-in for the Affymetrix U74Av2
// mouse-brain data), normalize it, compute the pairwise Spearman rank
// correlation matrix, threshold it into a relationship graph, and then
// run the clique pipeline — maximum clique bound, then maximal clique
// enumeration — to recover the modules as cliques.
//
// This is the workflow behind the paper's observation that "enumerating
// maximal cliques defines pure functional units, each affected by a
// unique combination of sources of co-variation".
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// 300 probe sets, 80 arrays; three co-expression modules, one of
	// which responds only in half the conditions (a transitory
	// association, the paper's motivating case for clique methods over
	// clustering) and one containing two anti-correlated members.
	const genes, conditions = 300, 80
	modules := []repro.ModuleSpec{
		{Genes: seq(0, 12), Signal: 6},              // strong module
		{Genes: seq(20, 8), Signal: 6, Terse: true}, // transitory module
		{Genes: seq(40, 6), Signal: 6, Inverse: 2},  // with repressed genes
	}
	mat := repro.SynthesizeExpression(rng, repro.SyntheticConfig{
		Genes:      genes,
		Conditions: conditions,
		Modules:    modules,
	})
	for i := 0; i < genes; i++ {
		mat.Names = append(mat.Names, fmt.Sprintf("probe_%03d", i))
	}
	mat.Normalize()

	// Threshold the rank-correlation matrix.  The paper picks thresholds
	// producing target densities; do the same for ~0.2%.
	target := genes * (genes - 1) / 2 * 2 / 1000
	if target < 150 {
		target = 150
	}
	th := repro.CorrelationThreshold(mat, repro.SpearmanRank, target)
	// The representation layer picks the adjacency backend from the
	// thresholded density: sparse coexpression graphs come back CSR
	// (O(n+m) bytes), dense ones keep the paper's bitmap index.  At
	// genome scale this is what makes the graph loadable at all.
	g, err := repro.CorrelationGraphRep(mat, repro.SpearmanRank, th, repro.Auto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("correlation graph: %d vertices, %d edges (|rho| >= %.3f, density %.3f%%)\n",
		g.N(), g.M(), th, 100*repro.Density(g))
	fmt.Printf("representation: %s, %d adjacency bytes (dense would be %d)\n",
		g.Representation(), g.Bytes(), repro.DenseAdjacencyBytes(g.N()))

	// Clique pipeline: bound, then enumerate through the facade.
	omega := repro.MaxCliqueSize(g)
	fmt.Printf("maximum clique: %d (planted module size 12)\n", omega)

	fmt.Println("maximal cliques of size >= 5:")
	enum := repro.NewEnumerator(repro.WithBounds(5, omega))
	_, err = enum.Run(context.Background(), g, repro.ReporterFunc(func(c repro.Clique) {
		fmt.Printf("  size %2d:", len(c))
		for _, v := range c {
			fmt.Printf(" %s", g.Name(v))
		}
		fmt.Println()
	}))
	if err != nil {
		log.Fatal(err)
	}
}

func seq(start, count int) []int {
	out := make([]int, count)
	for i := range out {
		out[i] = start + i
	}
	return out
}
