package repro

import (
	"context"
	"fmt"
	"iter"
	"time"

	"repro/internal/clique"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/enumcfg"
	"repro/internal/graph"
	"repro/internal/hybrid"
	"repro/internal/membudget"
	"repro/internal/ooc"
	"repro/internal/paraclique"
	"repro/internal/parallel"
)

// ErrMemoryBudget is the sentinel wrapped by every backend's
// budget-exceeded abort (WithMemoryBudget without a spill directory).
// The hybrid backend never returns it: a tripped budget spills and
// continues instead.
var ErrMemoryBudget = membudget.ErrBudget

// Strategy selects the parallel dispatch policy.
type Strategy = enumcfg.Strategy

const (
	// Contiguous dispatches each level's sub-lists from one shared
	// canonical-order queue: best balance, no ownership.
	Contiguous = enumcfg.Contiguous
	// Affinity is the paper's policy: sub-lists stay with the worker
	// that created them, and idle workers steal only from backlogs over
	// the transfer threshold.
	Affinity = enumcfg.Affinity
)

// Reporter receives maximal cliques as they are discovered.  Emitted
// cliques are borrowed — the enumerators reuse the backing array — so a
// Reporter that retains one past its Emit call must Clone it first.
// Enumerator.Cliques has no such caveat: it yields owned copies.
type Reporter = clique.Reporter

// ReporterFunc adapts a function to the Reporter interface.
type ReporterFunc = clique.ReporterFunc

// Collector is a Reporter that copies and stores every emitted clique.
type Collector = clique.Collector

// Counter is a Reporter that only counts cliques by size, for runs whose
// full output would not fit in memory.
type Counter = clique.Counter

// NewCounter returns an empty Counter.
func NewCounter() *Counter { return clique.NewCounter() }

// Stats, when registered with WithStats, is filled by Run / Cliques /
// Paracliques with whatever the selected backend observed.  On
// cancellation or error the partial statistics up to the abort point are
// retained — this is what a Ctrl-C'd cliquer prints.
type Stats struct {
	// Backend names the execution regime that ran: "sequential",
	// "parallel", "parallel-barrier", "out-of-core",
	// "hybrid(sequential)" / "hybrid(parallel)" (annotated with
	// "->out-of-core@k" once a hybrid run spills), or "paraclique" for
	// Paracliques.
	Backend string
	// MaximalCliques counts the cliques delivered to the caller;
	// MaxCliqueSize is the largest size among them.
	MaximalCliques int64
	MaxCliqueSize  int
	// Levels holds one entry per generation step k -> k+1.
	Levels []LevelStats
	// PeakBytes is the memory governor's high-water mark: the largest
	// byte total the run ever declared resident across every layer —
	// graph adjacency, paper-formula candidate storage, worker scratch,
	// spill I/O buffers.  Reported by every backend, budgeted or not.
	PeakBytes int64
	// SpilledAtLevel is the clique size the hybrid backend was
	// generating when its governor tripped and the run went out-of-core
	// (0: never spilled, or not a hybrid run).
	SpilledAtLevel int
	// Paracliques counts the paracliques Paracliques extracted.
	Paracliques int
	// SpillBytesWritten / SpillBytesRead / PeakLevelFileBytes describe
	// the out-of-core backend's I/O volume (encoded bytes actually
	// moved).  SpillRawBytesWritten is the fixed-width-equivalent
	// payload; with OOCCompress the ratio of the two is the level-file
	// compression win.  Resumed reports that the run continued a
	// checkpoint, in which case the spill counters are cumulative across
	// the original run and the resume.
	SpillBytesWritten    int64
	SpillRawBytesWritten int64
	SpillBytesRead       int64
	PeakLevelFileBytes   int64
	Resumed              bool
	// WorkerBusy is the per-worker busy seconds and Transfers the number
	// of sub-lists processed away from their home worker (parallel
	// backends).
	WorkerBusy []float64
	Transfers  int
	// DistWorkers / DistReleases / DistWorkerDeaths describe a
	// distributed run: the worker-process count, the leases revoked
	// (expiry or death) and re-run on another worker, and the worker
	// processes that died and were respawned.  Zero outside the
	// distributed backend; a fault-free run has zero releases and
	// deaths.
	DistWorkers      int
	DistReleases     int
	DistWorkerDeaths int
	// Elapsed is the wall-clock run time measured by the facade.
	Elapsed time.Duration
}

// LevelStats is the per-generation-step view common to every backend.
// Fields a backend does not measure are zero (e.g. Transfers outside the
// parallel pool, ResidentBytes in the barrier pool).
type LevelStats struct {
	FromK         int   // size of the consumed candidates
	Sublists      int   // sub-lists consumed (in-core backends)
	Cliques       int64 // candidate cliques consumed
	Maximal       int64 // maximal (FromK+1)-cliques the backend reported
	ResidentBytes int64 // in-core: resident candidate bytes; ooc: level file bytes
	Transfers     int   // parallel: sub-lists processed off their home worker
}

// Enumerator is the single entry point to maximal clique enumeration: one
// run description that selects the sequential, parallel, or out-of-core
// backend from its options and executes it with cancellation and
// observability.  The zero Enumerator (NewEnumerator with no options) is
// the paper's default: the full size range from Init_K = 2, dense stored
// bitmaps, in-core, one thread.
//
// An Enumerator is immutable after construction and may be reused for
// any number of runs; runs sharing one Enumerator must not execute
// concurrently when a Stats sink or OnLevel observer is registered.
type Enumerator struct {
	cfg          enumcfg.Config // template; each run copies it and adds its ctx
	rep          Representation // requested graph representation
	repSet       bool           // WithGraphRepresentation was given
	gov          *membudget.Governor
	graphCharged bool // WithGraphCharged: entry charge is the caller's
	stats        *Stats
	onLevel      func(LevelStats)
}

// Option configures an Enumerator.
type Option func(*Enumerator)

// NewEnumerator builds an Enumerator from functional options.
// Configuration errors (inverted bounds, unsupported combinations) are
// reported by the first Run/Cliques/Paracliques call, so construction
// chains stay fluent.
func NewEnumerator(opts ...Option) *Enumerator {
	e := &Enumerator{}
	for _, o := range opts {
		o(e)
	}
	return e
}

// WithBounds restricts enumeration to clique sizes in [lo, hi].  lo is
// the paper's Init_K: with lo >= 3 the k-clique seeder starts the level
// machinery at size lo (cliques smaller than lo are never generated); hi
// = 0 means unbounded above, otherwise the run stops after generating
// size-hi cliques — the paper obtains hi from a maximum clique
// computation (MaxCliqueSize).
func WithBounds(lo, hi int) Option {
	return func(e *Enumerator) { e.cfg.Lo, e.cfg.Hi = lo, hi }
}

// WithWorkers selects the parallel backend when n > 1: the persistent
// streaming worker pool with dynamic chunk dispatch and in-order
// streaming emission.  Output order is identical to the sequential
// backend.  Combined with WithOutOfCore it sets the out-of-core
// shard-join worker count instead (equivalent to OOCWorkers).
func WithWorkers(n int) Option {
	return func(e *Enumerator) { e.cfg.Workers = n }
}

// WithStrategy picks the parallel dispatch policy (default Contiguous).
func WithStrategy(s Strategy) Option {
	return func(e *Enumerator) { e.cfg.Strategy = s }
}

// WithBarrier switches the parallel backend to the bulk-synchronous
// reference pool — the benchmark baseline.  Emission order within a level
// follows worker order, so full canonical order is only guaranteed with
// the Contiguous strategy; cancellation is level-granular.
func WithBarrier() Option {
	return func(e *Enumerator) { e.cfg.Barrier = true }
}

// OutOfCoreOption tunes the out-of-core backend selected by
// WithOutOfCore.
type OutOfCoreOption func(*enumcfg.Config)

// OOCWorkers joins each level's shard files on n concurrent workers
// (the CPU-bound part of the out-of-core loop).  The emitted clique
// stream is identical at any worker count: shard results are released
// in shard order by the same streaming in-order merger the parallel
// backend uses.
func OOCWorkers(n int) OutOfCoreOption {
	return func(c *enumcfg.Config) { c.Workers = n }
}

// OOCCompress delta-varint encodes the level records instead of storing
// fixed-width vertices, typically shrinking level files severalfold on
// clique-rich graphs — a direct attack on the "intensive disk I/O" the
// paper blames for its out-of-core one-week cutoff.  Stats reports both
// encoded and raw-equivalent bytes so the win is measurable.
func OOCCompress() OutOfCoreOption {
	return func(c *enumcfg.Config) { c.OOCCompress = true }
}

// OOCCheckpoint makes the run resumable: dir becomes a durable run
// directory holding a manifest committed at every level boundary, kept
// on cancellation (or crash) so WithResume can continue the run.  A
// successful run removes its manifest.
func OOCCheckpoint() OutOfCoreOption {
	return func(c *enumcfg.Config) { c.Checkpoint = true }
}

// WithOutOfCore selects the disk-backed backend: levels are spilled as
// files under dir (created if absent) instead of held in memory, the
// regime the paper used before moving to large shared-memory machines.
// levelBudget, when positive, aborts the run once a level's files would
// exceed that many bytes — the out-of-core analogue of the paper's
// one-week cutoff.  The backend reports maximal cliques of size >= 3;
// smaller bounds are filtered.  Spill files of a plain run are always
// removed, even on cancellation; with OOCCheckpoint the last completed
// level is kept for WithResume instead.  The knobs select parallel
// shard joins (OOCWorkers), compressed level records (OOCCompress) and
// resumability (OOCCheckpoint).  Combined with WithMemoryBudget this
// selects the hybrid backend instead: in-core until the governor trips,
// out-of-core after (see WithSpillover).
func WithOutOfCore(dir string, levelBudget int64, knobs ...OutOfCoreOption) Option {
	return func(e *Enumerator) {
		e.cfg.Dir, e.cfg.SpillBudget = dir, levelBudget
		for _, k := range knobs {
			k(&e.cfg)
		}
	}
}

// WithResume continues the checkpointed out-of-core run whose manifest
// lives in dir (written by a WithOutOfCore + OOCCheckpoint run that was
// canceled or killed).  The graph must be the one the checkpoint was
// written for — Run verifies its fingerprint — and the record encoding
// is adopted from the manifest.  The interrupted level is re-joined from
// its beginning, so the resumed stream is exactly the uninterrupted
// stream from the first clique of the interrupted level's size on, and
// the run's Stats continue from the checkpoint (a resumed run's final
// spill counters match an uninterrupted run's).  Composes with the
// other out-of-core knobs (OOCWorkers may differ run to run).
func WithResume(dir string) Option {
	return func(e *Enumerator) { e.cfg.Dir, e.cfg.Resume = dir, true }
}

// DistOption tunes the distributed backend selected by
// WithDistributed.
type DistOption func(*enumcfg.Config)

// DistWorkerCommand sets the argv the coordinator execs for each worker
// slot (default: the current binary re-executed with -worker).  The
// command must speak the worker side of the dist wire protocol on its
// stdin/stdout — `cliquer -worker` and `cliqued -worker` both do.
func DistWorkerCommand(argv ...string) DistOption {
	return func(c *enumcfg.Config) { c.DistWorkerCmd = argv }
}

// DistLeaseTimeout bounds one shard join (default 30s): a lease overdue
// by more than this is revoked, its worker killed, and the shard
// re-leased to another worker.  Heartbeating workers extend their lease,
// so only a hung or dead worker is ever swept.
func DistLeaseTimeout(d time.Duration) DistOption {
	return func(c *enumcfg.Config) { c.DistLeaseTimeout = d }
}

// DistCompress delta-varint encodes the level shards the coordinator
// and workers exchange — the distributed spelling of OOCCompress
// (workers adopt the coordinator's record encoding from their init
// frame).
func DistCompress() DistOption {
	return func(c *enumcfg.Config) { c.OOCCompress = true }
}

// DistShardBytes overrides the target level-shard size (0 = auto-sized
// from the consumed level and the worker count).  Smaller shards mean
// finer-grained leases: more scheduling traffic, less work lost per
// worker death.
func DistShardBytes(n int64) DistOption {
	return func(c *enumcfg.Config) { c.DistShardBytes = n }
}

// WithDistributed selects the distributed backend: a coordinator that
// executes one enumeration level at a time by leasing the level's shard
// files to n worker processes, each joining its shards against its own
// copy of the graph.  dir is the shared run directory (graph file,
// level shards, checkpoint manifest, and the final audit report all
// live there); workers are spawned over the exec/pipe transport and
// respawned if they die, with their in-flight shards re-leased — the
// emitted clique stream is byte-identical to a sequential run at any
// worker count, faults included.  OOCCompress composes (workers adopt
// the coordinator's record encoding); WithWorkers, WithMemoryBudget,
// and the checkpoint/resume knobs do not — the coordinator manages its
// own per-level checkpoint, and the coordinator's governor is the run's
// single accounting authority (worker scratch is held as child
// reservations).  The backend reports maximal cliques of size >= 3;
// smaller bounds are filtered like the out-of-core backend.
func WithDistributed(workers int, dir string, knobs ...DistOption) Option {
	return func(e *Enumerator) {
		e.cfg.DistWorkers = workers
		e.cfg.Dir = dir
		for _, k := range knobs {
			k(&e.cfg)
		}
	}
}

// WithMemoryBudget sets the run's memory governor budget: the bound on
// everything the run declares resident — the graph representation's
// adjacency bytes, the paper-formula candidate storage, worker scratch,
// and spill I/O buffers.  On the in-core backends (sequential, parallel,
// barrier) exceeding it aborts with core.ErrMemoryBudget — the
// in-library analogue of the paper's graph-B blow-up termination.
// Combined with a spill directory (WithOutOfCore or WithSpillover) it
// instead selects the hybrid backend, which transparently continues the
// run out of core when the budget trips.
func WithMemoryBudget(bytes int64) Option {
	return func(e *Enumerator) { e.cfg.MemoryBudget = bytes }
}

// WithSpillover selects the adaptive hybrid backend explicitly: the run
// starts in core (sequential, or the streaming pool with WithWorkers)
// and, the moment the WithMemoryBudget governor trips, drains the level
// being generated to run-aligned shard files under dir and continues on
// the out-of-core engine — same byte-identical ordered clique stream
// either way, memory-priced while the run fits, disk-priced only from
// the level that stopped fitting.  Requires WithMemoryBudget.  The same
// regime is selected implicitly when WithOutOfCore and WithMemoryBudget
// are combined.  Of the knobs, OOCCompress encodes the spilled records
// and OOCWorkers widens the post-spill shard joins (the in-core phase
// already follows WithWorkers); OOCCheckpoint does not compose — a
// manifest cannot replay the in-core prefix.
func WithSpillover(dir string, knobs ...OutOfCoreOption) Option {
	return func(e *Enumerator) {
		e.cfg.Dir = dir
		e.cfg.Spill = true
		for _, k := range knobs {
			k(&e.cfg)
		}
	}
}

// WithGovernor runs against an externally owned memory governor instead
// of a per-run one: every layer's charges (graph adjacency, candidate
// storage, worker scratch, spill buffers) land on gov, the in-core
// backends abort with ErrMemoryBudget once gov reports Over, and the
// Stats PeakBytes reports gov's peak — which is shared with whatever
// else charges it.  This is the multi-tenancy hook: a server carves a
// membudget.Reservation out of one shared governor per admitted query
// and hands the reservation's child governor to the run, so the sum of
// all concurrent runs' residency is enforced against one budget.
//
// Mutually exclusive with WithMemoryBudget (the governor's own budget
// is the run's budget); the first Run reports the conflict.  The
// governor is not reset between runs — reuse a fresh one per run when
// per-run Peak matters.
func WithGovernor(gov *membudget.Governor) Option {
	return func(e *Enumerator) { e.gov = gov }
}

// WithGraphCharged declares that the input graph's adjacency bytes are
// already resident under the run's governor budget tree — charged by
// the caller before the run (cliqued's registry pins every loaded
// graph this way) — so the facade skips its own entry charge instead
// of counting the same bytes twice.  With a shared parent governor
// (WithGovernor over a membudget.Reservation child) this is what keeps
// the parent's Used the true resident total: one charge per loaded
// graph, not one more per active query.  A conversion requested with
// WithGraphRepresentation is still charged — the converted copy is new
// residency the caller's pin does not cover.  Stats.PeakBytes then
// reports the run's working set without the pinned graph.  Without
// this option (the default) the facade charges the graph itself, which
// is correct whenever the governor is per-run.
func WithGraphCharged() Option {
	return func(e *Enumerator) { e.graphCharged = true }
}

// WithLowMemory switches to the paper's low-memory alternative: prefix
// common-neighbor bitmaps are recomputed with k-2 extra ANDs instead of
// stored.
func WithLowMemory() Option {
	return func(e *Enumerator) { e.cfg.Mode = enumcfg.CNRecompute }
}

// WithCompressedBitmaps stores prefix common-neighbor bitmaps
// WAH-compressed (the paper's future-work direction): high compression
// on sparse graphs at the cost of one decompression pass per sub-list.
func WithCompressedBitmaps() Option {
	return func(e *Enumerator) { e.cfg.Mode = enumcfg.CNCompress }
}

// WithGraphRepresentation converts the input graph to the given
// adjacency representation before every run: Dense for raw row-AND
// speed, CSR for O(n+m) memory, Compressed for WAH rows, Auto to let the
// measured density decide.  The conversion is skipped when the graph
// already matches (so passing an already-CSR graph costs nothing), and
// conversions are per-run — the caller's graph is never mutated.
// Without this option the graph is used exactly as handed in.
func WithGraphRepresentation(rep Representation) Option {
	return func(e *Enumerator) { e.rep, e.repSet = rep, true }
}

// WithReportSmall additionally reports maximal 1-cliques (isolated
// vertices) and maximal 2-cliques when the lower bound admits them
// (sequential backend only).
func WithReportSmall() Option {
	return func(e *Enumerator) { e.cfg.ReportSmall = true }
}

// WithStats registers a sink the next run fills with its statistics.
func WithStats(st *Stats) Option {
	return func(e *Enumerator) { e.stats = st }
}

// WithOnLevel registers an observer called after every generation step —
// the facade form of the per-level statistics cmd/cliquer streams with
// -stats.
func WithOnLevel(fn func(LevelStats)) Option {
	return func(e *Enumerator) { e.onLevel = fn }
}

// Run enumerates the maximal cliques of g on the configured backend,
// delivering each to r (which may be nil to count only) in
// non-decreasing order of size, canonical order within a size — the same
// stream from every backend, with one documented exception: the
// benchmark-only WithBarrier pool under the Affinity strategy guarantees
// size order but emits worker order within a level.  It returns the
// number of cliques delivered.  Cancel ctx to abort: Run then returns
// the count so far and an error wrapping ctx.Err(), worker pools shut
// down cleanly, and spill files are removed.
func (e *Enumerator) Run(ctx context.Context, g GraphInterface, r Reporter) (int64, error) {
	cfg, err := e.runConfig(ctx)
	if err != nil {
		return 0, err
	}
	gin := g
	if g, err = e.prepareGraph(g); err != nil {
		return 0, err
	}
	// One governor per run, charged by every layer; the first charge is
	// the graph representation itself — the footprint the enumeration
	// cannot run below.  A caller-supplied governor (WithGovernor)
	// replaces the per-run one so a shared budget sees the charges.
	// WithGraphCharged skips the entry charge for a graph the caller
	// already holds resident — unless prepareGraph converted it, in
	// which case the copy is new residency regardless.
	gov := e.gov
	if gov == nil {
		gov = membudget.New(cfg.MemoryBudget)
	}
	if !e.graphCharged || g != gin {
		gov.Charge(g.Bytes())
		defer gov.Release(g.Bytes())
	}
	st := e.statsSink(cfg)
	start := time.Now()
	defer func() {
		if st != nil {
			st.Elapsed = time.Since(start)
			st.PeakBytes = gov.Peak()
		}
	}()
	switch cfg.Backend() {
	case enumcfg.Hybrid:
		return e.runHybrid(cfg, g, r, st, gov)
	case enumcfg.OutOfCore:
		return e.runOutOfCore(cfg, g, r, st, gov)
	case enumcfg.Distributed:
		return e.runDistributed(cfg, g, r, st, gov)
	case enumcfg.Parallel, enumcfg.ParallelBarrier:
		return e.runParallel(cfg, g, r, st, gov)
	}
	return e.runSequential(cfg, g, r, st, gov)
}

// Cliques returns a range-over-func iterator over the maximal cliques of
// g, in the same order Run reports them.  Yielded cliques are owned
// copies — unlike Reporter emissions they may be retained freely.  A
// non-nil error is yielded as the final pair if the run fails; breaking
// out of the loop cancels the underlying run and releases its resources.
//
//	for c, err := range repro.NewEnumerator(repro.WithBounds(3, 0)).Cliques(ctx, g) {
//	    if err != nil { ... }
//	    use(c) // c is yours
//	}
func (e *Enumerator) Cliques(ctx context.Context, g GraphInterface) iter.Seq2[Clique, error] {
	return func(yield func(Clique, error) bool) {
		ictx, cancel := context.WithCancel(ctx)
		defer cancel()
		ch := make(chan Clique)
		done := make(chan error, 1)
		go func() {
			_, err := e.Run(ictx, g, ReporterFunc(func(c Clique) {
				select {
				case ch <- c.Clone():
				case <-ictx.Done():
					// Consumer broke out (or the caller canceled); the
					// run aborts at its next cancellation point.
				}
			}))
			close(ch)
			done <- err
		}()
		stopped := false
		for c := range ch {
			if !stopped && !yield(c, nil) {
				stopped = true
				cancel()
				// Keep draining so the producer can reach its
				// cancellation point and exit; no goroutine outlives
				// the loop.
			}
		}
		err := <-done
		if err != nil && !stopped {
			yield(nil, err)
		}
	}
}

// Paracliques decomposes g into paracliques — dense near-cliques glommed
// around successive maximum cliques — with the given proportional glom
// factor in (0, 1].  It composes with the enumerator options: the lower
// bound from WithBounds (clamped to >= 3) is the minimum seed clique
// size.  On cancellation the paracliques found so far are returned with
// ctx.Err().
func (e *Enumerator) Paracliques(ctx context.Context, g GraphInterface, glom float64) ([]Paraclique, error) {
	cfg, err := e.runConfig(ctx)
	if err != nil {
		return nil, err
	}
	gin := g
	if g, err = e.prepareGraph(g); err != nil {
		return nil, err
	}
	if glom <= 0 || glom > 1 {
		return nil, fmt.Errorf("repro: glom %v out of (0,1]", glom)
	}
	// The registered Stats sink is honored here like in Run: extraction
	// is its own regime (maximum-clique seeds + glom growth, not the
	// level machinery), so Backend says so, and the clique counters
	// describe the seed cliques the paracliques grew from.
	gov := e.gov
	if gov == nil {
		gov = membudget.New(0)
	}
	if !e.graphCharged || g != gin {
		gov.Charge(g.Bytes())
		defer gov.Release(g.Bytes())
	}
	st := e.statsSink(cfg)
	if st != nil {
		st.Backend = "paraclique"
	}
	start := time.Now()
	defer func() {
		if st != nil {
			st.Elapsed = time.Since(start)
			st.PeakBytes = gov.Peak()
		}
	}()
	min := cfg.Lo
	if min < 3 {
		min = 3
	}
	ps := paraclique.Extract(g, paraclique.Options{
		Ctx:           cfg.Ctx,
		Glom:          glom,
		MinCliqueSize: min,
	})
	if st != nil {
		st.Paracliques = len(ps)
		st.MaximalCliques = int64(len(ps))
		for _, p := range ps {
			if p.CoreSize > st.MaxCliqueSize {
				st.MaxCliqueSize = p.CoreSize
			}
		}
	}
	if err := cfg.Context().Err(); err != nil {
		return ps, fmt.Errorf("repro: paraclique extraction canceled: %w", err)
	}
	return ps, nil
}

// prepareGraph applies the requested representation conversion, if any.
func (e *Enumerator) prepareGraph(g GraphInterface) (GraphInterface, error) {
	if !e.repSet {
		return g, nil
	}
	gg, err := graph.Convert(g, e.rep)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return gg, nil
}

// runConfig copies the template config, attaches the run context, and
// validates.
func (e *Enumerator) runConfig(ctx context.Context) (enumcfg.Config, error) {
	cfg := e.cfg
	cfg.Ctx = ctx
	if e.gov != nil && cfg.MemoryBudget > 0 {
		return cfg, fmt.Errorf("repro: WithGovernor and WithMemoryBudget are mutually exclusive (the governor's own budget bounds the run)")
	}
	if err := cfg.Normalize(); err != nil {
		return cfg, fmt.Errorf("repro: %w", err)
	}
	return cfg, nil
}

// hybridMode names the in-core engine a hybrid config starts on.
func hybridMode(cfg enumcfg.Config) string {
	if cfg.Workers > 1 {
		return "parallel"
	}
	return "sequential"
}

// statsSink resets and returns the registered Stats, if any.
func (e *Enumerator) statsSink(cfg enumcfg.Config) *Stats {
	if e.stats == nil {
		return nil
	}
	name := cfg.Backend().String()
	if cfg.Backend() == enumcfg.Hybrid {
		name = "hybrid(" + hybridMode(cfg) + ")"
	}
	*e.stats = Stats{Backend: name}
	return e.stats
}

// observe fans one level record out to the stats sink and the observer.
func (e *Enumerator) observe(st *Stats, ls LevelStats) {
	if st != nil {
		st.Levels = append(st.Levels, ls)
	}
	if e.onLevel != nil {
		e.onLevel(ls)
	}
}

func (e *Enumerator) runSequential(cfg enumcfg.Config, g GraphInterface, r Reporter, st *Stats, gov *membudget.Governor) (int64, error) {
	opts := core.OptionsFromConfig(cfg)
	opts.Reporter = r
	opts.Gov = gov
	if st != nil || e.onLevel != nil {
		opts.OnLevel = func(ls core.LevelStats) {
			e.observe(st, LevelStats{
				FromK:         ls.FromK,
				Sublists:      ls.Sublists,
				Cliques:       ls.Cliques,
				Maximal:       ls.Maximal,
				ResidentBytes: ls.Bytes + ls.NextBytes,
			})
		}
	}
	res, err := core.Enumerate(g, opts)
	if res == nil {
		return 0, err
	}
	if st != nil {
		st.MaximalCliques = res.MaximalCliques
		st.MaxCliqueSize = res.MaxCliqueSize
	}
	return res.MaximalCliques, err
}

func (e *Enumerator) runHybrid(cfg enumcfg.Config, g GraphInterface, r Reporter, st *Stats, gov *membudget.Governor) (int64, error) {
	opts := hybrid.OptionsFromConfig(cfg)
	opts.Reporter = r
	opts.Gov = gov
	if st != nil || e.onLevel != nil {
		opts.OnLevel = func(ls hybrid.LevelStats) {
			e.observe(st, LevelStats{
				FromK:         ls.FromK,
				Sublists:      ls.Sublists,
				Cliques:       ls.Cliques,
				Maximal:       ls.Maximal,
				ResidentBytes: ls.ResidentBytes,
			})
		}
	}
	res, err := hybrid.Enumerate(g, opts)
	if res == nil {
		return 0, err
	}
	if st != nil {
		st.MaximalCliques = res.MaximalCliques
		st.MaxCliqueSize = res.MaxCliqueSize
		st.SpilledAtLevel = res.SpilledAtLevel
		st.SpillBytesWritten = res.OOC.BytesWritten
		st.SpillRawBytesWritten = res.OOC.RawBytesWritten
		st.SpillBytesRead = res.OOC.BytesRead
		st.PeakLevelFileBytes = res.OOC.PeakLevelFile
		if res.SpilledAtLevel > 0 {
			st.Backend = fmt.Sprintf("hybrid(%s->out-of-core@%d)", hybridMode(cfg), res.SpilledAtLevel)
		}
	}
	return res.MaximalCliques, err
}

func (e *Enumerator) runParallel(cfg enumcfg.Config, g GraphInterface, r Reporter, st *Stats, gov *membudget.Governor) (int64, error) {
	opts := parallel.OptionsFromConfig(cfg)
	opts.Reporter = r
	opts.Gov = gov
	if st != nil || e.onLevel != nil {
		opts.OnLevel = func(ls parallel.LevelStats) {
			e.observe(st, LevelStats{
				FromK:     ls.FromK,
				Sublists:  ls.Sublists,
				Maximal:   ls.Maximal,
				Transfers: ls.Transfers,
			})
		}
	}
	enumerate := parallel.Enumerate
	if cfg.Barrier {
		enumerate = parallel.EnumerateBarrier
	}
	res, err := enumerate(g, opts)
	if res == nil {
		return 0, err
	}
	if st != nil {
		st.MaximalCliques = res.MaximalCliques
		st.MaxCliqueSize = res.MaxCliqueSize
		st.WorkerBusy = res.WorkerBusy
		st.Transfers = res.Transfers
	}
	return res.MaximalCliques, err
}

func (e *Enumerator) runDistributed(cfg enumcfg.Config, g GraphInterface, r Reporter, st *Stats, gov *membudget.Governor) (int64, error) {
	// Like the out-of-core backend, the coordinator reports every
	// maximal clique of size >= 3; the facade applies the configured
	// lower bound and counts what it delivers.
	var count int64
	maxSize := 0
	opts := dist.Options{
		Ctx:          cfg.Ctx,
		Dir:          cfg.Dir,
		Workers:      cfg.DistWorkers,
		WorkerCmd:    cfg.DistWorkerCmd,
		LeaseTimeout: cfg.DistLeaseTimeout,
		MaxK:         cfg.Hi,
		Compress:     cfg.OOCCompress,
		ShardBytes:   cfg.DistShardBytes,
		Gov:          gov,
		Reporter: ReporterFunc(func(c Clique) {
			if len(c) < cfg.Lo {
				return
			}
			count++
			if len(c) > maxSize {
				maxSize = len(c)
			}
			if r != nil {
				r.Emit(c)
			}
		}),
	}
	if st != nil || e.onLevel != nil {
		opts.OnLevel = func(ls ooc.LevelStats) {
			// Same whole-level zeroing as runOutOfCore: a step FromK ->
			// FromK+1 reports cliques of size exactly FromK+1.
			maximal := ls.Maximal
			if ls.FromK+1 < cfg.Lo {
				maximal = 0
			}
			e.observe(st, LevelStats{
				FromK:         ls.FromK,
				Cliques:       ls.Cliques,
				Maximal:       maximal,
				ResidentBytes: ls.FileBytes + ls.NextBytes,
			})
		}
	}
	dst, err := dist.Enumerate(g, opts)
	if st != nil {
		st.MaximalCliques = count
		st.MaxCliqueSize = maxSize
		st.SpillBytesWritten = dst.BytesWritten
		st.SpillRawBytesWritten = dst.RawBytesWritten
		st.SpillBytesRead = dst.BytesRead
		st.DistWorkers = dst.Workers
		st.DistReleases = dst.Releases
		st.DistWorkerDeaths = dst.WorkerDeaths
	}
	return count, err
}

func (e *Enumerator) runOutOfCore(cfg enumcfg.Config, g GraphInterface, r Reporter, st *Stats, gov *membudget.Governor) (int64, error) {
	opts := ooc.OptionsFromConfig(cfg)
	opts.Gov = gov
	// The backend reports every maximal clique of size >= 3; the facade
	// applies the configured lower bound and counts what it delivers.
	var count int64
	maxSize := 0
	opts.Reporter = ReporterFunc(func(c Clique) {
		if len(c) < cfg.Lo {
			return
		}
		count++
		if len(c) > maxSize {
			maxSize = len(c)
		}
		if r != nil {
			r.Emit(c)
		}
	})
	if st != nil || e.onLevel != nil {
		opts.OnLevel = func(ls ooc.LevelStats) {
			// A step FromK -> FromK+1 reports maximal cliques of size
			// exactly FromK+1, so the facade's lower-bound filter zeroes
			// whole levels — keeping sum(Levels[].Maximal) equal to the
			// delivered count, as on the in-core backends.
			maximal := ls.Maximal
			if ls.FromK+1 < cfg.Lo {
				maximal = 0
			}
			e.observe(st, LevelStats{
				FromK:         ls.FromK,
				Cliques:       ls.Cliques,
				Maximal:       maximal,
				ResidentBytes: ls.FileBytes + ls.NextBytes,
			})
		}
	}
	enumerate := ooc.Enumerate
	if cfg.Resume {
		enumerate = ooc.Resume
	}
	ost, err := enumerate(g, opts)
	if st != nil {
		st.MaximalCliques = count
		st.MaxCliqueSize = maxSize
		st.SpillBytesWritten = ost.BytesWritten
		st.SpillRawBytesWritten = ost.RawBytesWritten
		st.SpillBytesRead = ost.BytesRead
		st.PeakLevelFileBytes = ost.PeakLevelFile
		st.Resumed = ost.Resumed
	}
	return count, err
}
