// Command cliquer runs the paper's full analysis pipeline on a graph:
// maximum clique upper bound, then maximal clique enumeration over a size
// range, on any of the enumeration backends behind the repro.Enumerator
// facade — sequential, parallel (streaming or barrier), or out-of-core.
//
// Usage:
//
//	cliquer [flags] <graph-file>
//
// The graph file is an edge list ("n m" header then "u v" lines) or
// DIMACS (-dimacs).  Maximal cliques are printed one per line in
// non-decreasing size order; use -count to suppress the listing.
//
// Parallel runs (-workers > 1) use the persistent streaming worker pool;
// -strategy selects the dispatch policy (affinity or contiguous),
// -barrier switches to the bulk-synchronous reference backend, and
// -stats streams per-level statistics to stderr.  -ooc DIR spills levels
// to disk instead of memory; -ooc-workers joins the level shards
// concurrently, -ooc-compress delta-varint encodes the level records,
// and -ooc-checkpoint keeps a resumable manifest so a killed run can be
// continued with -resume DIR (same graph file).
//
// -mem-budget BYTES arms the memory governor on any backend: a purely
// in-core run (sequential, parallel, barrier) aborts with partial
// statistics when the budget trips, while -mem-budget combined with
// -ooc DIR selects the adaptive hybrid backend — the run starts in core
// and transparently spills to DIR and continues out-of-core the moment
// the governor trips, producing the identical clique stream either way.
// The summary always reports the governor's peak resident bytes, and a
// spilled run reports the level at which it left memory.
//
// -dist N runs the distributed coordinator instead: N worker processes
// (spawned from this binary with -worker, or from -dist-worker-cmd) join
// the level shards under the -ooc directory, which -dist requires as the
// shared run directory.  -ooc-compress composes; -dist-lease-timeout
// bounds one shard join before the shard is re-leased, and
// -dist-shard-bytes overrides the lease granularity.  A worker that dies
// is respawned and its in-flight shard re-leased — the emitted stream is
// byte-identical to a sequential run regardless.
//
// Runs cancel cleanly: -timeout bounds the wall clock, and Ctrl-C
// (SIGINT) aborts mid-level — either way the partial statistics gathered
// so far are printed before exit, and a checkpointed out-of-core run
// keeps its last completed level on disk for -resume.
//
// Example:
//
//	graphgen -spec C -scale 0.5 -out c.el
//	cliquer -lo 5 -workers 4 -strategy affinity -stats -timeout 30s c.el
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro"
	"repro/internal/dist"
)

func main() {
	// A process spawned by a distributed coordinator is a worker, not a
	// CLI: the environment marker routes it into the wire-protocol loop
	// before any flag parsing (the -worker flag below is the human-visible
	// marker in the argv; activation is by environment).
	if dist.WorkerEnabled() {
		dist.WorkerMain()
	}
	lo := flag.Int("lo", 3, "smallest clique size to report (Init_K)")
	hi := flag.Int("hi", 0, "largest clique size (0: compute maximum clique and use it)")
	workers := flag.Int("workers", 1, "worker threads (1 = sequential)")
	strategy := flag.String("strategy", "affinity", "parallel dispatch strategy: affinity or contiguous")
	barrier := flag.Bool("barrier", false, "use the bulk-synchronous reference backend instead of the streaming pool")
	stats := flag.Bool("stats", false, "print live per-level statistics")
	countOnly := flag.Bool("count", false, "print counts only, not the cliques")
	dimacs := flag.Bool("dimacs", false, "input is DIMACS clique format")
	recompute := flag.Bool("low-mem", false, "recompute common-neighbor bitmaps instead of storing them")
	compress := flag.Bool("compress", false, "store common-neighbor bitmaps WAH-compressed")
	repr := flag.String("repr", "auto", "graph representation: auto, dense, csr or wah")
	oocDir := flag.String("ooc", "", "run the out-of-core enumerator, spilling levels to this directory")
	oocWorkers := flag.Int("ooc-workers", 0, "out-of-core: join level shards on this many workers (0 = inherit -workers)")
	oocCompress := flag.Bool("ooc-compress", false, "out-of-core: delta-varint encode level records")
	oocCheckpoint := flag.Bool("ooc-checkpoint", false, "out-of-core: keep a resumable manifest in the -ooc directory (resume with -resume)")
	resume := flag.String("resume", "", "continue the checkpointed out-of-core run in this directory (needs the same graph file)")
	distWorkers := flag.Int("dist", 0, "distributed: lease level shards to this many worker processes (requires -ooc DIR as the shared run directory)")
	distWorkerCmd := flag.String("dist-worker-cmd", "", "distributed: worker command line (default: this binary with -worker)")
	distLease := flag.Duration("dist-lease-timeout", 0, "distributed: revoke and re-lease a shard not joined within this duration (0 = 30s default)")
	distShardBytes := flag.Int64("dist-shard-bytes", 0, "distributed: target shard size in bytes, the lease granularity (0 = auto)")
	flag.Bool("worker", false, "serve as a distributed worker over stdin/stdout (activated by the coordinator's environment; this flag is the argv marker)")
	var budget int64
	flag.Int64Var(&budget, "mem-budget", 0, "memory governor budget in bytes, enforced on every backend (0 = unlimited; with -ooc the run spills over instead of aborting)")
	flag.Int64Var(&budget, "budget", 0, "deprecated alias of -mem-budget")
	spill := flag.Int64("spill-budget", 0, "out-of-core: abort if a level's files would exceed this many bytes (0 = unlimited)")
	noBound := flag.Bool("no-bound", false, "skip the maximum clique upper-bound computation")
	timeout := flag.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cliquer [flags] <graph-file>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	// Ctrl-C cancels the run through the enumerator's context; a second
	// Ctrl-C kills the process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	err := run(ctx, flag.Arg(0), options{
		lo: *lo, hi: *hi, workers: *workers, strategy: *strategy,
		barrier: *barrier, stats: *stats, countOnly: *countOnly,
		dimacs: *dimacs, recompute: *recompute, compress: *compress,
		repr: *repr, oocDir: *oocDir, oocWorkers: *oocWorkers,
		oocCompress: *oocCompress, oocCheckpoint: *oocCheckpoint,
		resume: *resume, budget: budget, spill: *spill,
		noBound: *noBound,
		dist:    *distWorkers, distWorkerCmd: *distWorkerCmd,
		distLease: *distLease, distShardBytes: *distShardBytes,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cliquer: %v\n", err)
		os.Exit(1)
	}
}

type options struct {
	lo, hi, workers                   int
	strategy                          string
	barrier, stats, countOnly, dimacs bool
	recompute, compress, noBound      bool
	repr                              string
	oocDir                            string
	oocWorkers                        int
	oocCompress, oocCheckpoint        bool
	resume                            string
	budget, spill                     int64
	dist                              int
	distWorkerCmd                     string
	distLease                         time.Duration
	distShardBytes                    int64
}

func parseStrategy(s string) (repro.Strategy, error) {
	switch s {
	case "affinity":
		return repro.Affinity, nil
	case "contiguous":
		return repro.Contiguous, nil
	}
	return 0, fmt.Errorf("unknown -strategy %q (want affinity or contiguous)", s)
}

func run(ctx context.Context, path string, o options) error {
	strategy, err := parseStrategy(o.strategy)
	if err != nil {
		return err
	}
	rep, err := repro.ParseRepresentation(o.repr)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	// Format auto-detection: -dimacs forces DIMACS, otherwise the reader
	// sniffs the first meaningful line (c/p/e lines vs #-comments and
	// bare vertex pairs).
	format := repro.FormatAuto
	if o.dimacs {
		format = repro.FormatDIMACS
	}
	g, err := repro.ReadGraph(f, format, rep)
	// The graph is fully materialized here; close eagerly and report a
	// close failure (truncated read, I/O error surfacing late) rather
	// than dropping it from a defer.
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d vertices, %d edges, density %.4f%%, representation %s (%d adjacency bytes; dense would be %d)\n",
		g.N(), g.M(), 100*repro.Density(g), g.Representation(),
		g.Bytes(), repro.DenseAdjacencyBytes(g.N()))

	if o.hi == 0 && !o.noBound {
		// The exact bound densifies non-dense graphs; at the scale the
		// sparse representations exist for, that allocation is exactly
		// what the user chose -repr to avoid, so skip it rather than
		// blow the memory budget behind their back.
		const densifyCap = 256 << 20
		if g.Representation() != repro.Dense && repro.DenseAdjacencyBytes(g.N()) > densifyCap {
			fmt.Fprintf(os.Stderr, "cliquer: skipping the maximum-clique bound: it would densify %d bytes of adjacency; pass -hi or -no-bound to silence\n",
				repro.DenseAdjacencyBytes(g.N()))
		} else {
			start := time.Now()
			omega := repro.MaxCliqueSize(g)
			fmt.Printf("maximum clique: %d (%.3fs)\n", omega, time.Since(start).Seconds())
			o.hi = omega
		}
	}

	var report repro.Reporter
	if !o.countOnly {
		report = repro.ReporterFunc(func(c repro.Clique) {
			names := make([]string, len(c))
			for i, v := range c {
				names[i] = g.Name(v)
			}
			fmt.Println(strings.Join(names, " "))
		})
	}

	opts := []repro.Option{repro.WithBounds(o.lo, o.hi)}
	if o.workers > 1 {
		opts = append(opts, repro.WithWorkers(o.workers), repro.WithStrategy(strategy))
		if o.barrier {
			opts = append(opts, repro.WithBarrier())
		}
	} else if o.barrier {
		fmt.Fprintln(os.Stderr, "cliquer: ignoring -barrier: not a parallel run (use -workers > 1)")
	}
	if o.recompute {
		opts = append(opts, repro.WithLowMemory())
	}
	if o.compress {
		opts = append(opts, repro.WithCompressedBitmaps())
	}
	if o.dist > 0 {
		if o.oocDir == "" {
			return fmt.Errorf("-dist requires -ooc DIR as the shared run directory")
		}
		if o.resume != "" || o.oocCheckpoint {
			return fmt.Errorf("-dist manages its own per-level checkpoint; -resume and -ooc-checkpoint do not apply")
		}
		if o.oocWorkers > 0 {
			fmt.Fprintln(os.Stderr, "cliquer: ignoring -ooc-workers: -dist leases shards to worker processes instead")
		}
		var knobs []repro.DistOption
		if o.distWorkerCmd != "" {
			knobs = append(knobs, repro.DistWorkerCommand(strings.Fields(o.distWorkerCmd)...))
		}
		if o.distLease > 0 {
			knobs = append(knobs, repro.DistLeaseTimeout(o.distLease))
		}
		if o.distShardBytes > 0 {
			knobs = append(knobs, repro.DistShardBytes(o.distShardBytes))
		}
		if o.oocCompress {
			knobs = append(knobs, repro.DistCompress())
		}
		opts = append(opts, repro.WithDistributed(o.dist, o.oocDir, knobs...))
	} else if o.oocDir != "" || o.resume != "" {
		dir := o.oocDir
		if o.resume != "" {
			if o.oocDir != "" && o.oocDir != o.resume {
				return fmt.Errorf("-resume %s and -ooc %s name different directories", o.resume, o.oocDir)
			}
			dir = o.resume
		}
		var knobs []repro.OutOfCoreOption
		if o.oocWorkers > 0 {
			knobs = append(knobs, repro.OOCWorkers(o.oocWorkers))
		}
		if o.oocCompress {
			knobs = append(knobs, repro.OOCCompress())
		}
		if o.oocCheckpoint {
			knobs = append(knobs, repro.OOCCheckpoint())
		}
		opts = append(opts, repro.WithOutOfCore(dir, o.spill, knobs...))
		if o.resume != "" {
			opts = append(opts, repro.WithResume(dir))
		}
	}
	if o.budget > 0 {
		// The governor enforces the budget on every backend; together
		// with -ooc it selects the hybrid backend, which spills over and
		// keeps running instead of aborting.
		opts = append(opts, repro.WithMemoryBudget(o.budget))
	}
	var st repro.Stats
	opts = append(opts, repro.WithStats(&st))
	if o.stats {
		opts = append(opts, repro.WithOnLevel(func(ls repro.LevelStats) {
			fmt.Fprintf(os.Stderr,
				"level %2d->%2d: %8d sub-lists %9d cliques %8d maximal %5d transfers %12d resident bytes\n",
				ls.FromK, ls.FromK+1, ls.Sublists, ls.Cliques, ls.Maximal,
				ls.Transfers, ls.ResidentBytes)
		}))
	}

	if _, err := repro.NewEnumerator(opts...).Run(ctx, g, report); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			printSummary(os.Stderr, "interrupted", &st, o)
			return fmt.Errorf("run canceled after %.3fs with partial results: %w", st.Elapsed.Seconds(), err)
		}
		// Mid-run aborts (memory/spill budget exceeded) still carry the
		// partial statistics — for the budget workflow the peak resident
		// bytes ARE the result.  st.Backend is empty only when the
		// configuration was rejected before anything ran.
		if st.Backend != "" {
			printSummary(os.Stderr, "aborted", &st, o)
		}
		return err
	}
	printSummary(os.Stdout, "done", &st, o)
	return nil
}

// printSummary reports the (possibly partial) run statistics — the same
// shape whether the run completed, timed out, or was Ctrl-C'd.
func printSummary(w *os.File, state string, st *repro.Stats, o options) {
	fmt.Fprintf(w, "%s (%s): %d maximal cliques in [%d,%d], max size %d, %d levels, %.3fs\n",
		state, st.Backend, st.MaximalCliques, o.lo, o.hi, st.MaxCliqueSize,
		len(st.Levels), st.Elapsed.Seconds())
	switch {
	case st.Backend == "distributed":
		fmt.Fprintf(w, "  dist: %d worker processes, %d re-leased shards, %d worker deaths\n",
			st.DistWorkers, st.DistReleases, st.DistWorkerDeaths)
		fmt.Fprintf(w, "  spill: %d bytes written, %d read\n",
			st.SpillBytesWritten, st.SpillBytesRead)
		if st.SpillRawBytesWritten > st.SpillBytesWritten {
			fmt.Fprintf(w, "  encoding: %d raw bytes -> %d on disk (%.2fx smaller)\n",
				st.SpillRawBytesWritten, st.SpillBytesWritten,
				float64(st.SpillRawBytesWritten)/float64(st.SpillBytesWritten))
		}
	case st.Backend == "out-of-core" || strings.HasPrefix(st.Backend, "hybrid("):
		if st.SpilledAtLevel > 0 {
			fmt.Fprintf(w, "  spillover: governor tripped generating level %d; continued out of core\n",
				st.SpilledAtLevel)
		}
		if st.SpillBytesWritten > 0 || st.Backend == "out-of-core" {
			resumed := ""
			if st.Resumed {
				resumed = " (resumed)"
			}
			fmt.Fprintf(w, "  spill%s: %d bytes written, %d read, peak level %d\n",
				resumed, st.SpillBytesWritten, st.SpillBytesRead, st.PeakLevelFileBytes)
		}
		if st.SpillRawBytesWritten > st.SpillBytesWritten {
			fmt.Fprintf(w, "  encoding: %d raw bytes -> %d on disk (%.2fx smaller)\n",
				st.SpillRawBytesWritten, st.SpillBytesWritten,
				float64(st.SpillRawBytesWritten)/float64(st.SpillBytesWritten))
		}
	case st.Backend == "parallel" || st.Backend == "parallel-barrier":
		fmt.Fprintf(w, "  pool: %d workers, %d transfers\n", len(st.WorkerBusy), st.Transfers)
	}
	if st.PeakBytes > 0 {
		budget := ""
		if o.budget > 0 {
			budget = fmt.Sprintf(" (budget %d)", o.budget)
		}
		fmt.Fprintf(w, "  governor peak: %d bytes resident%s\n", st.PeakBytes, budget)
	}
}
