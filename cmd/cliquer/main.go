// Command cliquer runs the paper's full analysis pipeline on a graph:
// maximum clique upper bound, then maximal clique enumeration over a size
// range, sequentially or multithreaded.
//
// Usage:
//
//	cliquer [flags] <graph-file>
//
// The graph file is an edge list ("n m" header then "u v" lines) or
// DIMACS (-dimacs).  Maximal cliques are printed one per line in
// non-decreasing size order; use -count to suppress the listing.
//
// Parallel runs (-workers > 1) use the persistent streaming worker pool;
// -strategy selects the dispatch policy (affinity or contiguous),
// -barrier switches to the bulk-synchronous reference backend, and
// -stats streams per-level scheduling statistics to stderr.
//
// Example:
//
//	graphgen -spec C -scale 0.5 -out c.el
//	cliquer -lo 5 -workers 4 -strategy affinity -stats c.el
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/clique"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/maxclique"
	"repro/internal/ooc"
	"repro/internal/parallel"
	"repro/internal/sched"
)

func main() {
	lo := flag.Int("lo", 3, "smallest clique size to report (Init_K)")
	hi := flag.Int("hi", 0, "largest clique size (0: compute maximum clique and use it)")
	workers := flag.Int("workers", 1, "worker threads (1 = sequential)")
	strategy := flag.String("strategy", "affinity", "parallel dispatch strategy: affinity or contiguous")
	barrier := flag.Bool("barrier", false, "use the bulk-synchronous reference backend instead of the streaming pool")
	stats := flag.Bool("stats", false, "print live per-level scheduling statistics (parallel runs)")
	countOnly := flag.Bool("count", false, "print counts only, not the cliques")
	dimacs := flag.Bool("dimacs", false, "input is DIMACS clique format")
	recompute := flag.Bool("low-mem", false, "recompute common-neighbor bitmaps instead of storing them")
	compress := flag.Bool("compress", false, "store common-neighbor bitmaps WAH-compressed")
	oocDir := flag.String("ooc", "", "run the out-of-core enumerator, spilling levels to this directory")
	budget := flag.Int64("budget", 0, "abort if resident candidate bytes exceed this (0 = unlimited)")
	noBound := flag.Bool("no-bound", false, "skip the maximum clique upper-bound computation")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cliquer [flags] <graph-file>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *lo, *hi, *workers, *strategy, *barrier, *stats,
		*countOnly, *dimacs, *recompute, *compress, *oocDir, *budget, *noBound); err != nil {
		fmt.Fprintf(os.Stderr, "cliquer: %v\n", err)
		os.Exit(1)
	}
}

func parseStrategy(s string) (parallel.Strategy, error) {
	switch s {
	case "affinity":
		return parallel.Affinity, nil
	case "contiguous":
		return parallel.Contiguous, nil
	}
	return 0, fmt.Errorf("unknown -strategy %q (want affinity or contiguous)", s)
}

func run(path string, lo, hi, workers int, strategyName string, barrier, stats,
	countOnly, dimacs, recompute, compress bool,
	oocDir string, budget int64, noBound bool) error {
	strategy, err := parseStrategy(strategyName)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var g *graph.Graph
	if dimacs {
		g, err = graph.ReadDIMACS(f)
	} else {
		g, err = graph.ReadEdgeList(f)
	}
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d vertices, %d edges, density %.4f%%\n",
		g.N(), g.M(), 100*g.Density())

	if hi == 0 && !noBound {
		start := time.Now()
		omega := maxclique.Size(g)
		fmt.Printf("maximum clique: %d (%.3fs)\n", omega, time.Since(start).Seconds())
		hi = omega
	}

	counter := clique.NewCounter()
	var report clique.Reporter = counter
	if !countOnly {
		report = clique.ReporterFunc(func(c clique.Clique) {
			counter.Emit(c)
			names := make([]string, len(c))
			for i, v := range c {
				names[i] = g.Name(v)
			}
			fmt.Println(strings.Join(names, " "))
		})
	}

	start := time.Now()
	if oocDir != "" {
		// The out-of-core enumerator reports every maximal clique of
		// size >= 3; apply the lower bound here.
		filtered := clique.ReporterFunc(func(c clique.Clique) {
			if len(c) >= lo {
				report.Emit(c)
			}
		})
		st, err := ooc.Enumerate(g, ooc.Options{
			Dir:      oocDir,
			Reporter: filtered,
			MaxK:     hi,
		})
		if err != nil {
			return err
		}
		fmt.Printf("out-of-core: %d maximal cliques in [%d,%d] in %.3fs; %d bytes written, %d read, peak level file %d\n",
			counter.Total, lo, hi, time.Since(start).Seconds(),
			st.BytesWritten, st.BytesRead, st.PeakLevelFile)
		return nil
	}
	if workers > 1 {
		popts := parallel.Options{
			Workers:     workers,
			Lo:          lo,
			Hi:          hi,
			RecomputeCN: recompute,
			CompressCN:  compress,
			Strategy:    strategy,
			Reporter:    report,
		}
		if stats {
			popts.OnLevel = func(st parallel.LevelStats) {
				busy := sched.Summarize(st.WorkerBusy)
				fmt.Fprintf(os.Stderr,
					"level %2d->%2d: %6d sub-lists %4d chunks %5d transfers %7d maximal  busy %.4fs mean, %.1f%% imbalance\n",
					st.FromK, st.FromK+1, st.Sublists, st.Chunks, st.Transfers,
					st.Maximal, busy.Mean, 100*busy.Imbalance())
			}
		}
		backend, enumerate := "streaming", parallel.Enumerate
		if barrier {
			backend, enumerate = "barrier", parallel.EnumerateBarrier
		}
		res, err := enumerate(g, popts)
		if err != nil {
			return err
		}
		fmt.Printf("enumerated %d maximal cliques in [%d,%d] in %.3fs on %d workers (%s %s, %d transfers)\n",
			res.MaximalCliques, lo, hi, time.Since(start).Seconds(), workers,
			backend, strategyName, res.Transfers)
		return nil
	}
	if barrier {
		fmt.Fprintln(os.Stderr, "cliquer: ignoring -barrier: sequential run (use -workers > 1)")
	}
	copts := core.Options{
		Lo:           lo,
		Hi:           hi,
		RecomputeCN:  recompute,
		CompressCN:   compress,
		MemoryBudget: budget,
		Reporter:     report,
	}
	if stats {
		copts.OnLevel = func(st core.LevelStats) {
			fmt.Fprintf(os.Stderr,
				"level %2d->%2d: %6d sub-lists %8d cliques %7d maximal %6d dropped  %d resident bytes\n",
				st.FromK, st.FromK+1, st.Sublists, st.Cliques, st.Maximal,
				st.Dropped, st.Bytes+st.NextBytes)
		}
	}
	res, err := core.Enumerate(g, copts)
	if res != nil && res.PeakBytes > 0 {
		fmt.Printf("peak candidate memory (paper formula): %d bytes\n", res.PeakBytes)
	}
	if err != nil {
		return err
	}
	fmt.Printf("enumerated %d maximal cliques in [%d,%d] in %.3fs\n",
		res.MaximalCliques, lo, hi, time.Since(start).Seconds())
	return nil
}
