// Command cliquer runs the paper's full analysis pipeline on a graph:
// maximum clique upper bound, then maximal clique enumeration over a size
// range, sequentially or multithreaded.
//
// Usage:
//
//	cliquer [flags] <graph-file>
//
// The graph file is an edge list ("n m" header then "u v" lines) or
// DIMACS (-dimacs).  Maximal cliques are printed one per line in
// non-decreasing size order; use -count to suppress the listing.
//
// Example:
//
//	graphgen -spec C -scale 0.5 -out c.el
//	cliquer -lo 5 -workers 4 c.el
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/clique"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/maxclique"
	"repro/internal/ooc"
	"repro/internal/parallel"
)

func main() {
	lo := flag.Int("lo", 3, "smallest clique size to report (Init_K)")
	hi := flag.Int("hi", 0, "largest clique size (0: compute maximum clique and use it)")
	workers := flag.Int("workers", 1, "worker threads (1 = sequential)")
	countOnly := flag.Bool("count", false, "print counts only, not the cliques")
	dimacs := flag.Bool("dimacs", false, "input is DIMACS clique format")
	recompute := flag.Bool("low-mem", false, "recompute common-neighbor bitmaps instead of storing them")
	compress := flag.Bool("compress", false, "store common-neighbor bitmaps WAH-compressed")
	oocDir := flag.String("ooc", "", "run the out-of-core enumerator, spilling levels to this directory")
	budget := flag.Int64("budget", 0, "abort if resident candidate bytes exceed this (0 = unlimited)")
	noBound := flag.Bool("no-bound", false, "skip the maximum clique upper-bound computation")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cliquer [flags] <graph-file>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *lo, *hi, *workers, *countOnly, *dimacs,
		*recompute, *compress, *oocDir, *budget, *noBound); err != nil {
		fmt.Fprintf(os.Stderr, "cliquer: %v\n", err)
		os.Exit(1)
	}
}

func run(path string, lo, hi, workers int, countOnly, dimacs, recompute, compress bool,
	oocDir string, budget int64, noBound bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var g *graph.Graph
	if dimacs {
		g, err = graph.ReadDIMACS(f)
	} else {
		g, err = graph.ReadEdgeList(f)
	}
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d vertices, %d edges, density %.4f%%\n",
		g.N(), g.M(), 100*g.Density())

	if hi == 0 && !noBound {
		start := time.Now()
		omega := maxclique.Size(g)
		fmt.Printf("maximum clique: %d (%.3fs)\n", omega, time.Since(start).Seconds())
		hi = omega
	}

	counter := clique.NewCounter()
	var report clique.Reporter = counter
	if !countOnly {
		report = clique.ReporterFunc(func(c clique.Clique) {
			counter.Emit(c)
			names := make([]string, len(c))
			for i, v := range c {
				names[i] = g.Name(v)
			}
			fmt.Println(strings.Join(names, " "))
		})
	}

	start := time.Now()
	if oocDir != "" {
		// The out-of-core enumerator reports every maximal clique of
		// size >= 3; apply the lower bound here.
		filtered := clique.ReporterFunc(func(c clique.Clique) {
			if len(c) >= lo {
				report.Emit(c)
			}
		})
		st, err := ooc.Enumerate(g, ooc.Options{
			Dir:      oocDir,
			Reporter: filtered,
			MaxK:     hi,
		})
		if err != nil {
			return err
		}
		fmt.Printf("out-of-core: %d maximal cliques in [%d,%d] in %.3fs; %d bytes written, %d read, peak level file %d\n",
			counter.Total, lo, hi, time.Since(start).Seconds(),
			st.BytesWritten, st.BytesRead, st.PeakLevelFile)
		return nil
	}
	if workers > 1 {
		res, err := parallel.Enumerate(g, parallel.Options{
			Workers:     workers,
			Lo:          lo,
			Hi:          hi,
			RecomputeCN: recompute,
			Strategy:    parallel.Affinity,
			Reporter:    report,
		})
		if err != nil {
			return err
		}
		fmt.Printf("enumerated %d maximal cliques in [%d,%d] in %.3fs on %d workers (%d transfers)\n",
			res.MaximalCliques, lo, hi, time.Since(start).Seconds(), workers, res.Transfers)
		return nil
	}
	res, err := core.Enumerate(g, core.Options{
		Lo:           lo,
		Hi:           hi,
		RecomputeCN:  recompute,
		CompressCN:   compress,
		MemoryBudget: budget,
		Reporter:     report,
	})
	if res != nil && res.PeakBytes > 0 {
		fmt.Printf("peak candidate memory (paper formula): %d bytes\n", res.PeakBytes)
	}
	if err != nil {
		return err
	}
	fmt.Printf("enumerated %d maximal cliques in [%d,%d] in %.3fs\n",
		res.MaximalCliques, lo, hi, time.Since(start).Seconds())
	return nil
}
