// Command benchooc measures the out-of-core engine's two levers on the
// paper's Table-1 graph (graph A, synthesized by the expt harness):
// delta-varint level-record compression (bytes moved through disk — the
// bottleneck the paper names) and parallel shard joins (wall clock).
// `make bench-ooc-json` runs it and pins the result as BENCH_ooc.json —
// the out-of-core perf-trajectory artifact CI uploads per commit, next
// to BENCH_repr.json.
//
// The sweep is serial/parallel x raw/compressed; every configuration
// must report the same maximal-clique count (verified here), and the
// summary derives the two acceptance ratios: encoded-bytes reduction
// (target >= 2x) and the parallel speedup at -workers workers (target
// > 1x).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/expt"
	"repro/internal/graph"
	"repro/internal/ooc"
)

type runResult struct {
	Name            string  `json:"name"`
	Workers         int     `json:"workers"`
	Compress        bool    `json:"compress"`
	WallNS          int64   `json:"wall_ns"`
	MaximalCliques  int64   `json:"maximal_cliques"`
	Levels          int     `json:"levels"`
	Shards          int64   `json:"shards"`
	BytesWritten    int64   `json:"bytes_written"`
	RawBytesWritten int64   `json:"raw_bytes_written"`
	BytesRead       int64   `json:"bytes_read"`
	PeakLevelBytes  int64   `json:"peak_level_bytes"`
	VsRawBytes      float64 `json:"vs_raw_bytes"` // raw-equivalent / on-disk bytes
}

type report struct {
	Schema           string      `json:"schema"`
	Graph            string      `json:"graph"`
	N                int         `json:"n"`
	M                int         `json:"m"`
	Runs             []runResult `json:"runs"`
	CompressionRatio float64     `json:"compression_ratio"` // serial raw bytes / serial compressed bytes
	ParallelSpeedup  float64     `json:"parallel_speedup"`  // serial compressed wall / parallel compressed wall
}

func main() {
	out := flag.String("out", "BENCH_ooc.json", "output JSON path")
	scale := flag.Float64("scale", 1.0, "Table-1 (graph A) scale factor")
	workers := flag.Int("workers", 4, "worker count of the parallel configurations")
	seed := flag.Int64("seed", 1, "generator seed")
	reps := flag.Int("reps", 3, "timed repetitions per configuration (best is kept)")
	flag.Parse()

	spec := expt.SpecA.Scale(*scale)
	g := expt.Build(spec, *seed)
	rep := report{
		Schema: "repro/bench-ooc/v1",
		Graph:  spec.Name,
		N:      g.N(),
		M:      g.M(),
	}

	configs := []struct {
		name     string
		workers  int
		compress bool
	}{
		{"serial-raw", 1, false},
		{"serial-compressed", 1, true},
		{fmt.Sprintf("parallel%d-raw", *workers), *workers, false},
		{fmt.Sprintf("parallel%d-compressed", *workers), *workers, true},
	}
	var want int64 = -1
	for _, c := range configs {
		r, err := timedRun(g, c.workers, c.compress, *reps)
		if err != nil {
			fatal(err)
		}
		r.Name = c.name
		if want < 0 {
			want = r.MaximalCliques
		} else if r.MaximalCliques != want {
			fatal(fmt.Errorf("%s found %d maximal cliques, baseline %d", c.name, r.MaximalCliques, want))
		}
		rep.Runs = append(rep.Runs, r)
	}
	rep.CompressionRatio = ratio(rep.Runs[0].BytesWritten, rep.Runs[1].BytesWritten)
	rep.ParallelSpeedup = ratio(rep.Runs[1].WallNS, rep.Runs[3].WallNS)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}

	fmt.Printf("wrote %s\n%s: n=%d m=%d, %d maximal cliques\n", *out, rep.Graph, rep.N, rep.M, want)
	for _, r := range rep.Runs {
		fmt.Printf("  %-22s %8v  %10d bytes on disk (%.1fx vs raw)  %d shards\n",
			r.Name, time.Duration(r.WallNS).Round(time.Millisecond),
			r.BytesWritten, r.VsRawBytes, r.Shards)
	}
	fmt.Printf("level-file compression: %.2fx   parallel speedup at %d workers: %.2fx\n",
		rep.CompressionRatio, *workers, rep.ParallelSpeedup)
}

func timedRun(g *graph.Graph, workers int, compress bool, reps int) (runResult, error) {
	var best runResult
	for i := 0; i < reps; i++ {
		dir, err := os.MkdirTemp("", "benchooc-*")
		if err != nil {
			return best, err
		}
		start := time.Now()
		st, err := ooc.Enumerate(g, ooc.Options{
			Dir:      dir,
			Workers:  workers,
			Compress: compress,
		})
		wall := time.Since(start).Nanoseconds()
		if rmErr := os.RemoveAll(dir); rmErr != nil && err == nil {
			err = rmErr // leftover spill dirs skew every later trial
		}
		if err != nil {
			return best, err
		}
		if i == 0 || wall < best.WallNS {
			best = runResult{
				Workers:         workers,
				Compress:        compress,
				WallNS:          wall,
				MaximalCliques:  st.Maximal,
				Levels:          st.Levels,
				Shards:          st.Shards,
				BytesWritten:    st.BytesWritten,
				RawBytesWritten: st.RawBytesWritten,
				BytesRead:       st.BytesRead,
				PeakLevelBytes:  st.PeakLevelFile,
				VsRawBytes:      ratio(st.RawBytesWritten, st.BytesWritten),
			}
		}
	}
	return best, nil
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchooc: %v\n", err)
	os.Exit(1)
}
