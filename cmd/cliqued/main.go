// Command cliqued is the multi-tenant clique query daemon: it serves
// the repro enumeration facade over HTTP/JSON to many concurrent
// clients under one shared memory budget.
//
// Usage:
//
//	cliqued [flags] [name=path ...]
//
// Each positional argument preloads a graph file into the registry at
// startup (the name= prefix is optional); further graphs are loaded at
// runtime with POST /graphs.  The daemon prints one line —
// "cliqued: listening on ADDR" — once the listener is up (with -addr
// :0 the kernel-chosen port appears there), and shuts down gracefully
// on SIGINT/SIGTERM, draining in-flight streams.
//
// The API (see README "Running the query service"):
//
//	POST   /graphs?name=&format=&rep=   load the request body as a graph
//	GET    /graphs                      list loaded graphs
//	GET    /graphs/{fp}                 one graph's info
//	DELETE /graphs/{fp}                 evict a graph
//	GET    /graphs/{fp}/cliques        stream maximal cliques (NDJSON or text)
//	GET    /graphs/{fp}/maxclique      one maximum clique
//	GET    /graphs/{fp}/paracliques    paraclique decomposition
//	POST   /pathways                    elementary flux modes of a network
//	GET    /healthz                     governor / cache / queue snapshot
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/dist"
	"repro/internal/service"
)

func main() {
	// A cliqued binary spawned by a distributed coordinator serves as an
	// enumeration worker instead of a daemon: the environment marker
	// routes it into the wire-protocol loop before flag parsing (the
	// -worker flag is the human-visible argv marker).
	if dist.WorkerEnabled() {
		dist.WorkerMain()
	}
	addr := flag.String("addr", "127.0.0.1:7421", "listen address (use :0 for a kernel-chosen port)")
	budget := flag.Int64("mem-budget", 0, "server-wide memory budget in bytes shared by loaded graphs and running queries (0 = unlimited)")
	queueDepth := flag.Int("queue-depth", 16, "queries allowed to wait for memory headroom before new ones are shed with 503")
	queueWait := flag.Duration("queue-wait", 30*time.Second, "how long a queued query waits for headroom before it is shed")
	headroom := flag.Int64("query-headroom", 64<<20, "default per-query working-memory reservation above the graph's adjacency bytes")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "result cache capacity in bytes (0 disables caching)")
	maxBody := flag.Int64("max-body", 1<<30, "largest accepted graph upload in bytes")
	maxWorkers := flag.Int("max-workers", 0, "cap on the workers= query parameter; larger requests are clamped (0 = GOMAXPROCS)")
	flag.Bool("worker", false, "serve as a distributed enumeration worker over stdin/stdout (activated by the coordinator's environment; this flag is the argv marker)")
	flag.Parse()

	if err := run(*addr, service.Config{
		Budget:        *budget,
		QueueDepth:    *queueDepth,
		QueueWait:     *queueWait,
		QueryHeadroom: *headroom,
		CacheBytes:    cacheOrDisabled(*cacheBytes),
		MaxBodyBytes:  *maxBody,
		MaxWorkers:    *maxWorkers,
	}, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "cliqued:", err)
		os.Exit(1)
	}
}

// cacheOrDisabled maps the flag's 0 (off) to the Config's explicit -1
// (the Config zero value means "default size").
func cacheOrDisabled(n int64) int64 {
	if n == 0 {
		return -1
	}
	return n
}

func run(addr string, cfg service.Config, preload []string) error {
	srv := service.New(cfg)
	for _, arg := range preload {
		name, path, ok := strings.Cut(arg, "=")
		if !ok {
			name, path = arg, arg
		}
		if err := loadFile(srv, name, path); err != nil {
			return err
		}
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("cliqued: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Graceful drain: stop accepting, let in-flight streams finish.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// loadFile preloads one graph into the registry (format auto-detected,
// exactly as POST /graphs does for uploads).
func loadFile(srv *service.Server, name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	g, err := repro.ReadGraph(f, repro.FormatAuto, repro.Auto)
	cerr := f.Close()
	if err != nil {
		return fmt.Errorf("load %s: %w", path, err)
	}
	if cerr != nil {
		return fmt.Errorf("load %s: %w", path, cerr)
	}
	e, _, err := srv.Registry().Add(name, g)
	if err != nil {
		return fmt.Errorf("load %s: %w", path, err)
	}
	fmt.Printf("cliqued: loaded %s as %s (n=%d m=%d)\n", path, e.Fingerprint, g.N(), g.M())
	return nil
}
