// Command benchhybrid measures the adaptive hybrid backend on the
// paper's Table-1 graph (graph A, synthesized by the expt harness): the
// memory-governor budget is swept from unlimited (pure in-core) through
// fractions of the unconstrained peak down to one byte (effectively
// pure out-of-core), and each run reports its wall clock, governor
// peak, spill level, and disk traffic.  `make bench-hybrid-json` runs
// it and pins the result as BENCH_hybrid.json — the spillover
// perf-trajectory artifact CI uploads per commit, next to
// BENCH_repr.json and BENCH_ooc.json.
//
// Every configuration must deliver the same maximal-clique count
// (verified here); the summary derives the headline trade-off: the
// governor-peak reduction of the spilled runs against their wall-clock
// cost relative to unconstrained in-core.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/graph"
	"repro/internal/hybrid"
	"repro/internal/membudget"
)

type runResult struct {
	Name           string `json:"name"`
	Budget         int64  `json:"budget"`
	Workers        int    `json:"workers"`
	WallNS         int64  `json:"wall_ns"`
	MaximalCliques int64  `json:"maximal_cliques"`
	SpilledAtLevel int    `json:"spilled_at_level"` // 0 = stayed in core
	GovernorPeak   int64  `json:"governor_peak"`
	SpillBytes     int64  `json:"spill_bytes"` // written + read
}

type report struct {
	Schema          string      `json:"schema"`
	Graph           string      `json:"graph"`
	N               int         `json:"n"`
	M               int         `json:"m"`
	InCorePeak      int64       `json:"in_core_peak"` // unconstrained paper-formula peak
	Runs            []runResult `json:"runs"`
	PeakReduction   float64     `json:"peak_reduction"`   // unlimited peak / peak-at-quarter-budget
	SpillSlowdown   float64     `json:"spill_slowdown"`   // quarter-budget wall / unlimited wall
	ParallelSpeedup float64     `json:"parallel_speedup"` // quarter serial wall / quarter parallel wall
}

func main() {
	out := flag.String("out", "BENCH_hybrid.json", "output JSON path")
	scale := flag.Float64("scale", 1.0, "Table-1 (graph A) scale factor")
	workers := flag.Int("workers", 4, "worker count of the parallel configuration")
	seed := flag.Int64("seed", 1, "generator seed")
	reps := flag.Int("reps", 3, "timed repetitions per configuration (best is kept)")
	flag.Parse()

	spec := expt.SpecA.Scale(*scale)
	g := expt.Build(spec, *seed)
	inCore, err := core.Enumerate(g, core.Options{})
	if err != nil {
		fatal(err)
	}
	rep := report{
		Schema:     "repro/bench-hybrid/v1",
		Graph:      spec.Name,
		N:          g.N(),
		M:          g.M(),
		InCorePeak: inCore.PeakBytes,
	}

	configs := []struct {
		name    string
		budget  int64
		workers int
	}{
		{"unlimited", 0, 1},
		{"peak/2", inCore.PeakBytes / 2, 1},
		{"peak/4", inCore.PeakBytes / 4, 1},
		{fmt.Sprintf("peak/4-workers%d", *workers), inCore.PeakBytes / 4, *workers},
		{"1-byte", 1, 1},
	}
	for _, c := range configs {
		r, err := timedRun(g, c.budget, c.workers, *reps)
		if err != nil {
			fatal(err)
		}
		r.Name = c.name
		if r.MaximalCliques != inCore.MaximalCliques {
			fatal(fmt.Errorf("%s found %d maximal cliques, in-core baseline %d",
				c.name, r.MaximalCliques, inCore.MaximalCliques))
		}
		rep.Runs = append(rep.Runs, r)
	}
	rep.PeakReduction = ratio(rep.Runs[0].GovernorPeak, rep.Runs[2].GovernorPeak)
	rep.SpillSlowdown = ratio(rep.Runs[2].WallNS, rep.Runs[0].WallNS)
	rep.ParallelSpeedup = ratio(rep.Runs[2].WallNS, rep.Runs[3].WallNS)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}

	fmt.Printf("wrote %s\n%s: n=%d m=%d, %d maximal cliques, unconstrained peak %d bytes\n",
		*out, rep.Graph, rep.N, rep.M, inCore.MaximalCliques, inCore.PeakBytes)
	for _, r := range rep.Runs {
		spilled := "stayed in core"
		if r.SpilledAtLevel > 0 {
			spilled = fmt.Sprintf("spilled at level %d", r.SpilledAtLevel)
		}
		fmt.Printf("  %-18s %8v  peak %10d bytes  %-20s %d spill bytes\n",
			r.Name, time.Duration(r.WallNS).Round(time.Millisecond),
			r.GovernorPeak, spilled, r.SpillBytes)
	}
	fmt.Printf("peak reduction at quarter budget: %.2fx   slowdown: %.2fx   parallel speedup: %.2fx\n",
		rep.PeakReduction, rep.SpillSlowdown, rep.ParallelSpeedup)
}

func timedRun(g *graph.Graph, budget int64, workers, reps int) (runResult, error) {
	var best runResult
	for i := 0; i < reps; i++ {
		dir, err := os.MkdirTemp("", "benchhybrid-*")
		if err != nil {
			return best, err
		}
		gov := membudget.New(budget)
		start := time.Now()
		res, err := hybrid.Enumerate(g, hybrid.Options{
			Workers: workers,
			Dir:     dir,
			Gov:     gov,
		})
		wall := time.Since(start).Nanoseconds()
		if rmErr := os.RemoveAll(dir); rmErr != nil && err == nil {
			err = rmErr // leftover spill dirs skew every later trial
		}
		if err != nil {
			return best, err
		}
		if i == 0 || wall < best.WallNS {
			best = runResult{
				Budget:         budget,
				Workers:        workers,
				WallNS:         wall,
				MaximalCliques: res.MaximalCliques,
				SpilledAtLevel: res.SpilledAtLevel,
				GovernorPeak:   gov.Peak(),
				SpillBytes:     res.OOC.BytesWritten + res.OOC.BytesRead,
			}
		}
	}
	return best, nil
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchhybrid: %v\n", err)
	os.Exit(1)
}
