package main

import (
	"testing"

	"repro/internal/expt"
)

// tinyCfg keeps the dispatcher tests fast.
var tinyCfg = expt.Config{Scale: 0.3, Seed: 1, Reps: 1, Budget: 1 << 18}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("nosuch", tinyCfg); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunSmokeFastExperiments(t *testing.T) {
	for _, name := range []string{"maxclique", "table1", "fig8", "fig9", "blowup", "ablate"} {
		if err := run(name, tinyCfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestScalingFamilyDeduplicatesInitK(t *testing.T) {
	// At scale 0.3 the Init_K ladder collapses onto 3; the family must
	// not collect duplicate traces.
	fam, err := scalingFamily(tinyCfg)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, e := range fam.Entries {
		if seen[e.InitK] {
			t.Fatalf("duplicate Init_K %d in family", e.InitK)
		}
		seen[e.InitK] = true
	}
}

func TestScaleOf(t *testing.T) {
	if scaleOf(expt.Config{}) != 1 {
		t.Error("zero scale should normalize to 1")
	}
	if scaleOf(expt.Config{Scale: 0.5}) != 0.5 {
		t.Error("explicit scale dropped")
	}
}
