// Command repro regenerates every table and figure of the paper's
// evaluation section (see DESIGN.md §4 and EXPERIMENTS.md).
//
// Usage:
//
//	repro [flags] <experiment>
//
// Experiments: maxclique, table1, fig5, fig6, fig7, fig8, fig9, blowup, all
//
// Flags:
//
//	-scale f   graph scale in (0,1]; 1 = the paper's exact sizes (default 0.85)
//	-seed n    RNG seed (default 1)
//	-reps n    repetitions for mean±stddev experiments (default 10)
//	-budget n  byte budget for the blow-up experiment (default 1 GiB)
//
// The default scale 0.85 keeps the largest experiment (the Init_K=3
// sweep of Figures 6-7) within workstation memory and minutes of run
// time; -scale 1 reproduces the paper's exact graph sizes and needs
// several GB of RAM and patience.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/expt"
)

func main() {
	scale := flag.Float64("scale", 0.85, "graph scale in (0,1]; 1 = paper scale")
	seed := flag.Int64("seed", 1, "RNG seed")
	reps := flag.Int("reps", 10, "repetitions for mean±stddev experiments")
	budget := flag.Int64("budget", 1<<30, "byte budget for the blow-up experiment")
	timeout := flag.Duration("timeout", 0, "abort the experiment after this duration (0 = none)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: repro [flags] <maxclique|table1|fig5|fig6|fig7|fig8|fig9|blowup|ablate|all>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	// Ctrl-C and -timeout cancel the enumeration phases between levels;
	// a second Ctrl-C kills the process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	cfg := expt.Config{Ctx: ctx, Scale: *scale, Seed: *seed, Reps: *reps, Budget: *budget}

	if err := run(flag.Arg(0), cfg); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "repro: experiment canceled (%v); partial tables above are valid\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "repro: %v\n", err)
		os.Exit(1)
	}
}

func run(name string, cfg expt.Config) error {
	switch name {
	case "maxclique":
		t, err := expt.MaxCliqueBounds(cfg)
		if t != nil {
			if perr := t.Fprint(os.Stdout); err == nil {
				err = perr
			}
		}
		return err
	case "table1":
		res, err := expt.Table1(cfg)
		if err != nil {
			return err
		}
		return res.Table.Fprint(os.Stdout)
	case "fig5":
		t, err := expt.Fig5(cfg)
		if err != nil {
			return err
		}
		return t.Fprint(os.Stdout)
	case "fig6", "fig7":
		fam, err := scalingFamily(cfg)
		if err != nil {
			return err
		}
		if name == "fig6" {
			t, err := expt.Fig6(cfg, fam)
			if err != nil {
				return err
			}
			return t.Fprint(os.Stdout)
		}
		t, err := expt.Fig7(cfg, fam)
		if err != nil {
			return err
		}
		return t.Fprint(os.Stdout)
	case "fig8":
		t, err := expt.Fig8(cfg)
		if err != nil {
			return err
		}
		return t.Fprint(os.Stdout)
	case "fig9":
		t, err := expt.Fig9(cfg)
		if err != nil {
			return err
		}
		return t.Fprint(os.Stdout)
	case "blowup":
		res, err := expt.Blowup(cfg)
		if err != nil {
			return err
		}
		return res.Table.Fprint(os.Stdout)
	case "ablate":
		tables, err := expt.Ablations(cfg)
		for _, t := range tables {
			if perr := t.Fprint(os.Stdout); err == nil {
				err = perr
			}
		}
		return err
	case "all":
		for _, sub := range []string{"maxclique", "table1", "fig5", "fig8", "fig9", "blowup"} {
			fmt.Printf("--- %s ---\n", sub)
			if err := run(sub, cfg); err != nil {
				return fmt.Errorf("%s: %w", sub, err)
			}
		}
		// Figures 6 and 7 share the expensive Init_K=3 trace; collect it once.
		fam, err := scalingFamily(cfg)
		if err != nil {
			return err
		}
		fmt.Println("--- fig6 ---")
		t6, err := expt.Fig6(cfg, fam)
		if err != nil {
			return err
		}
		if err := t6.Fprint(os.Stdout); err != nil {
			return err
		}
		fmt.Println("--- fig7 ---")
		t7, err := expt.Fig7(cfg, fam)
		if err != nil {
			return err
		}
		return t7.Fprint(os.Stdout)
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}

// scalingFamily collects the shared Figure 6/7 traces once.
func scalingFamily(cfg expt.Config) (*expt.Family, error) {
	spec := expt.SpecC.Scale(scaleOf(cfg))
	iks := []int{3, spec.Omega - 10, spec.Omega - 9, spec.Omega - 8}
	for i := range iks {
		if iks[i] < 3 {
			iks[i] = 3
		}
	}
	// Deduplicate (tiny scales clamp the ladder onto 3).
	uniq := iks[:0]
	seen := map[int]bool{}
	for _, ik := range iks {
		if !seen[ik] {
			seen[ik] = true
			uniq = append(uniq, ik)
		}
	}
	return expt.CollectFamily(cfg, uniq)
}

func scaleOf(cfg expt.Config) float64 {
	if cfg.Scale == 0 {
		return 1
	}
	return cfg.Scale
}
