// Command benchrepr measures the graph-representation trade-off the
// pluggable data layer exists for: peak adjacency bytes and enumeration
// time per representation (dense bitmap, CSR, WAH-compressed rows) on a
// sparse and a dense synthetic graph, written as machine-readable JSON.
// `make bench-json` runs it and pins the result as BENCH_repr.json — the
// perf-trajectory artifact CI uploads per commit.
//
// On the sparse scenario the dense representation is measured by formula
// only when materializing it would exceed -dense-cap bytes (building a
// 1.25 GB bitmap index to report its size is exactly the failure mode
// the representation layer avoids); the entry is marked "skipped".
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro"
	"repro/internal/graph"
)

// A skipped entry (dense formula-only measurement) has no build,
// enumeration, or clique numbers: those fields are omitted rather than
// encoded as zeros a downstream trajectory plot would mistake for
// "instant".  Hence the pointer fields.
type repResult struct {
	Representation string `json:"representation"`
	AdjacencyBytes int64  `json:"adjacency_bytes"`
	VsDense        string `json:"vs_dense"`
	BuildNS        *int64 `json:"build_ns,omitempty"`
	EnumerateNS    *int64 `json:"enumerate_ns,omitempty"`
	MaximalCliques *int64 `json:"maximal_cliques,omitempty"`
	Skipped        bool   `json:"skipped,omitempty"`
}

type scenario struct {
	Name            string      `json:"name"`
	N               int         `json:"n"`
	M               int         `json:"m"`
	DensityPct      float64     `json:"density_pct"`
	Representations []repResult `json:"representations"`
}

type report struct {
	Schema    string     `json:"schema"`
	Scenarios []scenario `json:"scenarios"`
}

func main() {
	out := flag.String("out", "BENCH_repr.json", "output JSON path")
	sparseN := flag.Int("sparse-n", 100000, "vertices of the sparse scenario")
	sparseDeg := flag.Int("sparse-deg", 32, "average degree of the sparse scenario")
	denseN := flag.Int("dense-n", 1200, "vertices of the dense scenario")
	denseCap := flag.Int64("dense-cap", 1<<28, "skip materializing dense graphs above this many adjacency bytes")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	rep := report{Schema: "repro/bench-repr/v2"}

	sparse, err := runScenario(sparseScenario(*sparseN, *sparseDeg, *seed), *denseCap)
	if err != nil {
		fatal(err)
	}
	rep.Scenarios = append(rep.Scenarios, sparse)

	dense, err := runScenario(denseScenario(*denseN, *seed), *denseCap)
	if err != nil {
		fatal(err)
	}
	rep.Scenarios = append(rep.Scenarios, dense)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
	for _, sc := range rep.Scenarios {
		fmt.Printf("%s: n=%d m=%d\n", sc.Name, sc.N, sc.M)
		for _, r := range sc.Representations {
			enumerate, state := "-", ""
			if r.EnumerateNS != nil {
				enumerate = time.Duration(*r.EnumerateNS).String()
			}
			if r.Skipped {
				state = " (enumeration skipped: over -dense-cap)"
			}
			fmt.Printf("  %-5s %12d bytes (%s of dense)  enumerate %s%s\n",
				r.Representation, r.AdjacencyBytes, r.VsDense, enumerate, state)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchrepr: %v\n", err)
	os.Exit(1)
}

type spec struct {
	name  string
	n     int
	build func(b *repro.GraphBuilder)
}

// sparseScenario streams ~n*deg/2 random edges: the genome-scale-shaped
// workload (200k-vertex coexpression graphs have exactly this profile).
func sparseScenario(n, deg int, seed int64) spec {
	return spec{
		name: fmt.Sprintf("sparse-n%d-deg%d", n, deg),
		n:    n,
		build: func(b *repro.GraphBuilder) {
			rng := rand.New(rand.NewSource(seed))
			target := int64(n) * int64(deg) / 2
			for i := int64(0); i < target; i++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if u != v {
					b.AddEdge(u, v)
				}
			}
		},
	}
}

// denseScenario plants overlapping clique modules on a background — the
// paper's microarray-graph shape, dense enough that the bitmap index is
// the right call.
func denseScenario(n int, seed int64) spec {
	return spec{
		name: fmt.Sprintf("dense-n%d-planted", n),
		n:    n,
		build: func(b *repro.GraphBuilder) {
			rng := rand.New(rand.NewSource(seed))
			g := graph.PlantedGraph(rng, n, []graph.PlantedCliqueSpec{
				{Size: 24}, {Size: 18, Overlap: 6}, {Size: 14, Overlap: 4},
			}, n*8)
			graph.ForEachEdge(g, func(u, v int) bool {
				b.AddEdge(u, v)
				return true
			})
		},
	}
}

func runScenario(sp spec, denseCap int64) (scenario, error) {
	sc := scenario{Name: sp.name, N: sp.n}
	denseBytes := repro.DenseAdjacencyBytes(sp.n)
	for _, r := range []repro.Representation{repro.Dense, repro.CSR, repro.Compressed} {
		res := repResult{Representation: r.String()}
		if r == repro.Dense && denseBytes > denseCap {
			res.AdjacencyBytes = denseBytes
			res.VsDense = "100.00%"
			res.Skipped = true
			sc.Representations = append(sc.Representations, res)
			continue
		}
		start := time.Now()
		b := repro.NewGraphBuilder(sp.n)
		b.WithRepresentation(r)
		sp.build(b)
		g, err := b.Freeze()
		if err != nil {
			return sc, err
		}
		buildNS := time.Since(start).Nanoseconds()
		res.BuildNS = &buildNS
		sc.M = g.M()
		sc.DensityPct = 100 * float64(g.M()) / (float64(sp.n) * float64(sp.n-1) / 2)
		res.AdjacencyBytes = g.Bytes()
		res.VsDense = fmt.Sprintf("%.2f%%", 100*float64(g.Bytes())/float64(denseBytes))

		start = time.Now()
		count, err := repro.NewEnumerator(repro.WithBounds(3, 0)).Run(context.Background(), g, nil)
		if err != nil {
			return sc, err
		}
		enumNS := time.Since(start).Nanoseconds()
		res.EnumerateNS = &enumNS
		res.MaximalCliques = &count
		sc.Representations = append(sc.Representations, res)
	}
	return sc, nil
}
