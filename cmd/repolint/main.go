// Command repolint runs the repo's custom static-analysis suite (see
// internal/analysis): the mechanical enforcement of the memory-budget,
// cancellation, hot-path, cleanup-error and graph-lifecycle invariants
// the enumeration engine depends on.
//
// Standalone:
//
//	repolint [-tests] [-list] [patterns...]   # default pattern ./...
//
// exits 0 when clean, 2 when it reports findings, 1 on internal error.
//
// As a vet tool (the go command drives the unitchecker protocol —
// repolint answers -V=full with a stable fingerprint and accepts the
// per-package vet.cfg argument):
//
//	go vet -vettool=$(which repolint) ./...
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis/lintkit"
	"repro/internal/analysis/repolint"
)

func main() {
	os.Exit(run())
}

func run() int {
	suite := repolint.Analyzers()

	// Vet-tool protocol first: `repolint -V=full` fingerprints the tool
	// for the build cache; `repolint <pkg>.cfg` analyzes one package.
	for _, arg := range os.Args[1:] {
		if arg == "-V=full" || arg == "--V=full" {
			lintkit.VetVersion(os.Args[0], suite)
			return 0
		}
		if arg == "-flags" || arg == "--flags" {
			// The go command enumerates the tool's analyzer flags before
			// driving it; the suite exposes none.
			fmt.Println("[]")
			return 0
		}
	}
	if n := len(os.Args); n > 1 && strings.HasSuffix(os.Args[n-1], ".cfg") {
		return lintkit.VetMain(os.Args[n-1], suite)
	}

	tests := flag.Bool("tests", true, "also analyze _test.go files")
	list := flag.Bool("list", false, "print the analyzers in the suite and exit")
	audit := flag.Bool("audit", false,
		"list every //nolint suppression with its reason; exit nonzero on reasonless or unknown-analyzer suppressions")
	flag.Parse()

	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, fset, err := lintkit.Load(".", patterns, *tests)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		return 1
	}
	if *audit {
		sites, bad := lintkit.AuditNolints(fset, pkgs, suite)
		lintkit.FormatAudit(os.Stdout, sites)
		fmt.Fprintf(os.Stderr, "repolint: %d suppression(s), %d unhealthy\n", len(sites), bad)
		if bad > 0 {
			return 2
		}
		return 0
	}
	ds, err := lintkit.Run(fset, pkgs, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "repolint: %v\n", err)
		return 1
	}
	if len(ds) == 0 {
		return 0
	}
	lintkit.Format(os.Stdout, fset, ds)
	fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(ds))
	return 2
}
