// Command graphgen writes synthetic datasets: the paper's graph A/B/C
// stand-ins, random G(n,m) graphs, or a full synthetic microarray
// pipeline (expression matrix -> rank correlation -> threshold graph).
//
// Usage:
//
//	graphgen -spec C -scale 0.5 -out c.el
//	graphgen -n 1000 -m 5000 -out random.el
//	graphgen -microarray -genes 500 -conditions 80 -modules 12,8,6 -threshold 0.7 -out coexpr.el
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/expt"
	"repro/internal/graph"
	"repro/internal/microarray"
)

func main() {
	spec := flag.String("spec", "", "paper graph spec: A, B or C")
	scale := flag.Float64("scale", 1.0, "spec scale in (0,1]")
	n := flag.Int("n", 0, "vertices for G(n,m)")
	m := flag.Int("m", 0, "edges for G(n,m)")
	micro := flag.Bool("microarray", false, "generate via the expression pipeline")
	genes := flag.Int("genes", 300, "microarray: genes")
	conditions := flag.Int("conditions", 60, "microarray: conditions")
	modulesFlag := flag.String("modules", "10,7,5", "microarray: comma-separated module sizes")
	threshold := flag.Float64("threshold", 0.7, "microarray: |rho| threshold")
	matrixOut := flag.String("matrix-out", "", "microarray: also write the expression matrix as TSV")
	seed := flag.Int64("seed", 1, "RNG seed")
	out := flag.String("out", "", "output path (default stdout)")
	dimacs := flag.Bool("dimacs", false, "write DIMACS instead of edge list")
	flag.Parse()

	g, mat, err := generate(*spec, *scale, *n, *m, *micro, *genes, *conditions, *modulesFlag, *threshold, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
	if *matrixOut != "" {
		if mat == nil {
			fmt.Fprintln(os.Stderr, "graphgen: -matrix-out requires -microarray")
			os.Exit(1)
		}
		f, err := os.Create(*matrixOut)
		if err == nil {
			err = microarray.WriteTSV(f, mat)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(1)
		}
	}

	w := os.Stdout
	var outFile *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(1)
		}
		outFile = f
		w = f
	}
	if *dimacs {
		err = graph.WriteDIMACS(w, g)
	} else {
		err = graph.WriteEdgeList(w, g)
	}
	// A failed Close on the output file is a failed write (buffered data
	// may be lost); it must fail the command, not vanish in a defer.
	if outFile != nil {
		if cerr := outFile.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d vertices, %d edges (density %.4f%%)\n",
		g.N(), g.M(), 100*g.Density())
}

func generate(spec string, scale float64, n, m int, micro bool,
	genes, conditions int, modulesFlag string, threshold float64, seed int64) (*graph.Graph, *microarray.Matrix, error) {
	switch {
	case spec != "":
		var s expt.GraphSpec
		switch strings.ToUpper(spec) {
		case "A":
			s = expt.SpecA
		case "B":
			s = expt.SpecB
		case "C":
			s = expt.SpecC
		default:
			return nil, nil, fmt.Errorf("unknown spec %q (want A, B or C)", spec)
		}
		return expt.Build(s.Scale(scale), seed), nil, nil

	case micro:
		rng := rand.New(rand.NewSource(seed))
		var modules []microarray.ModuleSpec
		next := 0
		for _, part := range strings.Split(modulesFlag, ",") {
			size, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || size < 2 {
				return nil, nil, fmt.Errorf("bad module size %q", part)
			}
			members := make([]int, size)
			for i := range members {
				members[i] = next
				next++
			}
			if next > genes {
				return nil, nil, fmt.Errorf("modules need %d genes, have %d", next, genes)
			}
			modules = append(modules, microarray.ModuleSpec{Genes: members, Signal: 5})
		}
		mat := microarray.Synthesize(rng, microarray.SyntheticConfig{
			Genes:      genes,
			Conditions: conditions,
			Modules:    modules,
		})
		mat.Normalize()
		return microarray.CorrelationGraph(mat, microarray.SpearmanRank, threshold), mat, nil

	case n > 0:
		return graph.RandomGNM(rand.New(rand.NewSource(seed)), n, m), nil, nil

	default:
		return nil, nil, fmt.Errorf("one of -spec, -microarray or -n/-m is required")
	}
}
