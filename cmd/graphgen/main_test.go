package main

import (
	"testing"
)

func TestGenerateSpec(t *testing.T) {
	g, _, err := generate("C", 0.3, 0, 0, false, 0, 0, "", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 868 { // 2895 * 0.3
		t.Errorf("n = %d", g.N())
	}
	if _, _, err := generate("Z", 1, 0, 0, false, 0, 0, "", 0, 1); err == nil {
		t.Error("unknown spec accepted")
	}
	// Lowercase accepted.
	if _, _, err := generate("a", 0.2, 0, 0, false, 0, 0, "", 0, 1); err != nil {
		t.Errorf("lowercase spec: %v", err)
	}
}

func TestGenerateGNM(t *testing.T) {
	g, _, err := generate("", 1, 40, 80, false, 0, 0, "", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 40 || g.M() != 80 {
		t.Errorf("G(n,m): %d %d", g.N(), g.M())
	}
}

func TestGenerateMicroarray(t *testing.T) {
	g, mat, err := generate("", 1, 0, 0, true, 60, 40, "8,5", 0.7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 60 {
		t.Errorf("n = %d", g.N())
	}
	if mat == nil || mat.Genes != 60 {
		t.Error("expression matrix not returned")
	}
	// The planted 8-module must survive thresholding as a clique.
	module := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if !g.IsClique(module) {
		t.Error("planted module lost by the pipeline")
	}
	// Error cases.
	if _, _, err := generate("", 1, 0, 0, true, 5, 40, "8,5", 0.7, 3); err == nil {
		t.Error("module overflow accepted")
	}
	if _, _, err := generate("", 1, 0, 0, true, 60, 40, "x", 0.7, 3); err == nil {
		t.Error("bad module size accepted")
	}
	if _, _, err := generate("", 1, 0, 0, true, 60, 40, "1", 0.7, 3); err == nil {
		t.Error("module size 1 accepted")
	}
}

func TestGenerateNoMode(t *testing.T) {
	if _, _, err := generate("", 1, 0, 0, false, 0, 0, "", 0, 1); err == nil {
		t.Error("no generation mode accepted")
	}
}
