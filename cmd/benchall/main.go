// Command benchall is the unified benchmark trajectory: one binary that
// runs the representation, out-of-core and hybrid enumeration scenarios
// (the workloads benchrepr/benchooc/benchhybrid each snapshot once) plus
// the kernel microbenchmarks underneath them, and appends the result to
// a single versioned history file.  `make bench-all` runs it and commits
// the entry to BENCH_all.json; `make bench-check` (benchall -check)
// compares the last two entries and fails on a >10% per-scenario
// regression, so speed wins stick instead of silently eroding.
//
// Each history entry records the commit, timestamp, Go version, a free
// label, and per-scenario ns/op plus a bytes figure whose meaning is
// scenario-specific (operand bytes for kernels, adjacency/disk/peak
// bytes for enumeration scenarios).  The check compares ns/op only,
// matching scenarios by name; scenarios present in one entry but not
// the other are ignored, so the suite can grow without tripping the
// gate.
//
// Escape hatch for intentional regressions (e.g. a correctness fix that
// costs speed): set BENCH_ALLOW_REGRESSION to a short justification and
// the check reports the regressions but exits zero, printing the reason
// into the log so the trade-off is on the record.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"repro"
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/graph"
	"repro/internal/hybrid"
	"repro/internal/membudget"
	"repro/internal/ooc"
)

type scenarioResult struct {
	Name string `json:"name"`
	NsOp int64  `json:"ns_op"`
	// Bytes is scenario-specific: operand bytes touched per op for
	// kernels, adjacency/disk/governor-peak bytes for enumeration.
	Bytes   int64 `json:"bytes,omitempty"`
	Cliques int64 `json:"cliques,omitempty"`
}

type entry struct {
	Commit    string           `json:"commit"`
	Timestamp string           `json:"timestamp"`
	Label     string           `json:"label,omitempty"`
	GoVersion string           `json:"go"`
	Scenarios []scenarioResult `json:"scenarios"`
}

type trajectory struct {
	Schema  string  `json:"schema"`
	History []entry `json:"history"`
}

const schema = "repro/bench-all/v1"

func main() {
	out := flag.String("out", "BENCH_all.json", "trajectory JSON path (history is appended)")
	label := flag.String("label", "", "free-form label recorded on the new entry")
	check := flag.Bool("check", false, "compare the last two entries instead of benchmarking")
	threshold := flag.Float64("threshold", 0.10, "per-scenario regression tolerance for -check")
	reps := flag.Int("reps", 3, "timed repetitions per enumeration scenario (best is kept)")
	scale := flag.Float64("scale", 1.0, "Table-1 (graph A) scale factor for the ooc/hybrid scenarios")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	traj, err := load(*out)
	if err != nil {
		fatal(err)
	}

	if *check {
		if err := runCheck(traj, *threshold); err != nil {
			fatal(err)
		}
		return
	}

	e := entry{
		Commit:    commitID(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Label:     *label,
		GoVersion: runtime.Version(),
	}
	e.Scenarios = append(e.Scenarios, kernelScenarios(*seed)...)
	enumScenarios, err := enumerationScenarios(*reps, *scale, *seed)
	if err != nil {
		fatal(err)
	}
	e.Scenarios = append(e.Scenarios, enumScenarios...)
	traj.History = append(traj.History, e)

	if err := save(*out, traj); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (entry %d, commit %s)\n", *out, len(traj.History), e.Commit)
	for _, s := range e.Scenarios {
		fmt.Printf("  %-40s %12d ns/op\n", s.Name, s.NsOp)
	}
	if len(traj.History) >= 2 {
		printDelta(traj.History[len(traj.History)-2], e)
	}
}

func load(path string) (trajectory, error) {
	traj := trajectory{Schema: schema}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return traj, nil
	}
	if err != nil {
		return traj, err
	}
	if err := json.Unmarshal(data, &traj); err != nil {
		return traj, fmt.Errorf("benchall: parsing %s: %w", path, err)
	}
	if traj.Schema != schema {
		return traj, fmt.Errorf("benchall: %s has schema %q, want %q", path, traj.Schema, schema)
	}
	return traj, nil
}

func save(path string, traj trajectory) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(traj); err != nil {
		return errors.Join(err, f.Close())
	}
	return f.Close()
}

// commitID resolves the current commit for the entry header: an explicit
// REPRO_COMMIT wins (CI can pin the exact SHA it checked out), then git,
// then "unknown" — the trajectory is still useful without attribution.
func commitID() string {
	if c := os.Getenv("REPRO_COMMIT"); c != "" {
		return c
	}
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// ---- check mode ----

func runCheck(traj trajectory, threshold float64) error {
	if len(traj.History) < 2 {
		fmt.Printf("bench-check: %d entries in history, nothing to compare\n", len(traj.History))
		return nil
	}
	prev := traj.History[len(traj.History)-2]
	last := traj.History[len(traj.History)-1]
	prevBy := make(map[string]int64, len(prev.Scenarios))
	for _, s := range prev.Scenarios {
		prevBy[s.Name] = s.NsOp
	}
	var regressions []string
	for _, s := range last.Scenarios {
		base, ok := prevBy[s.Name]
		if !ok || base <= 0 {
			continue
		}
		ratio := float64(s.NsOp) / float64(base)
		mark := " "
		if ratio > 1+threshold {
			mark = "!"
			regressions = append(regressions,
				fmt.Sprintf("%s: %d -> %d ns/op (%.2fx)", s.Name, base, s.NsOp, ratio))
		}
		fmt.Printf("%s %-40s %12d -> %12d ns/op  %.2fx\n", mark, s.Name, base, s.NsOp, ratio)
	}
	if len(regressions) == 0 {
		fmt.Printf("bench-check: ok (%s -> %s, tolerance %.0f%%)\n",
			prev.Commit, last.Commit, threshold*100)
		return nil
	}
	if reason := os.Getenv("BENCH_ALLOW_REGRESSION"); reason != "" {
		fmt.Printf("bench-check: %d regression(s) ALLOWED: %s\n", len(regressions), reason)
		return nil
	}
	return fmt.Errorf("%d scenario(s) regressed more than %.0f%% (set BENCH_ALLOW_REGRESSION=<reason> if intentional):\n  %s",
		len(regressions), threshold*100, strings.Join(regressions, "\n  "))
}

func printDelta(prev, last entry) {
	prevBy := make(map[string]int64, len(prev.Scenarios))
	for _, s := range prev.Scenarios {
		prevBy[s.Name] = s.NsOp
	}
	fmt.Println("vs previous entry:")
	for _, s := range last.Scenarios {
		if base, ok := prevBy[s.Name]; ok && base > 0 && s.NsOp > 0 {
			fmt.Printf("  %-40s %.2fx\n", s.Name, float64(base)/float64(s.NsOp))
		}
	}
}

// ---- kernel microbenchmarks ----

// measure times fn adaptively: iteration count doubles until a run takes
// at least minDuration, and the best ns/op of three such runs is kept
// (the same best-of discipline as the enumeration scenarios).
func measure(fn func()) int64 {
	const minDuration = 20 * time.Millisecond
	fn() // warm up
	best := int64(0)
	for rep := 0; rep < 3; rep++ {
		iters := 1
		for {
			start := time.Now()
			for i := 0; i < iters; i++ {
				fn()
			}
			elapsed := time.Since(start)
			if elapsed >= minDuration {
				ns := elapsed.Nanoseconds() / int64(iters)
				if best == 0 || ns < best {
					best = ns
				}
				break
			}
			iters *= 2
		}
	}
	return best
}

// randomBitset fills a fresh n-bit set where each bit is set with
// probability p.
func randomBitset(rng *rand.Rand, n int, p float64) *bitset.Bitset {
	b := bitset.New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			b.Set(i)
		}
	}
	return b
}

var sink int64 // defeats dead-code elimination of pure kernels

func kernelScenarios(seed int64) []scenarioResult {
	rng := rand.New(rand.NewSource(seed))
	const n = 1 << 20 // 16384 words: larger than L1, the level-join regime
	x := randomBitset(rng, n, 0.02)
	y := randomBitset(rng, n, 0.02)
	z := randomBitset(rng, n, 0.02)
	dst := bitset.New(n)
	opBytes := int64(x.Bytes())

	var out []scenarioResult
	add := func(name string, bytes int64, fn func()) {
		out = append(out, scenarioResult{Name: name, NsOp: measure(fn), Bytes: bytes})
		fmt.Printf("  bench %-40s done\n", name)
	}

	add("kernel/and", 3*opBytes, func() { dst.And(x, y) })
	add("kernel/count", opBytes, func() { sink += int64(x.Count()) })
	add("kernel/andcount", 2*opBytes, func() { sink += int64(x.AndCount(y)) })
	// The maximality probe as the enumerator runs it: a single fused
	// pass over the three operands, no intersection materialized.  (The
	// baseline entry in the history timed the unfused composition —
	// dst.And(x, y) then dst.IntersectsWith(z) — under the same names.)
	add("kernel/fused-and-probe", 3*opBytes, func() {
		if bitset.AndAny3(x, y, z) {
			sink++
		}
	})
	add("kernel/fused-andnot-probe", 2*opBytes, func() {
		if bitset.AndNotAny(x, y) {
			sink++
		}
	})

	out = append(out, rowProbeScenarios(seed)...)
	return out
}

// rowProbeScenarios time the per-representation row probe the join's
// maximality test performs: Row(u).IntersectsWith(candidate-CN bitmap)
// on a sparse genome-scale-shaped graph.
func rowProbeScenarios(seed int64) []scenarioResult {
	const n, deg = 100000, 32
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	target := int64(n) * int64(deg) / 2
	for i := int64(0); i < target; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			if err := b.AddEdge(u, v); err != nil {
				fatal(err)
			}
		}
	}
	b.WithRepresentation(graph.CSR)
	base, err := b.Freeze()
	if err != nil {
		fatal(err)
	}
	wahG, err := graph.Convert(base, graph.Compressed)
	if err != nil {
		fatal(err)
	}

	// The probe operand is a materialized two-row union — the shape of a
	// level-2 common-neighbor bitmap.
	cn := bitset.New(n)
	tmp := bitset.New(n)
	base.Materialize(7, cn)
	base.Materialize(11, tmp)
	cn.Or(cn, tmp)

	var out []scenarioResult
	add := func(name string, g graph.Interface) {
		ns := measure(func() {
			for v := 0; v < 4096; v++ {
				if g.Row(v).IntersectsWith(cn) {
					sink++
				}
			}
		})
		out = append(out, scenarioResult{Name: name, NsOp: ns / 4096, Bytes: int64(cn.Bytes())})
		fmt.Printf("  bench %-40s done\n", name)
	}
	add("kernel/csr-row-probe", base)
	add("kernel/wah-row-probe", wahG)
	return out
}

// ---- enumeration scenarios ----

func enumerationScenarios(reps int, scale float64, seed int64) ([]scenarioResult, error) {
	var out []scenarioResult

	dense, err := facadeScenario("enum/dense-n1200-planted", repro.Dense, denseBuild(1200, seed), reps)
	if err != nil {
		return nil, err
	}
	out = append(out, dense)

	csr, err := facadeScenario("enum/csr-sparse-n20000-deg32", repro.CSR, sparseBuild(20000, 32, seed), reps)
	if err != nil {
		return nil, err
	}
	out = append(out, csr)

	wah, err := facadeScenario("enum/wah-sparse-n20000-deg32", repro.Compressed, sparseBuild(20000, 32, seed), reps)
	if err != nil {
		return nil, err
	}
	out = append(out, wah)

	spec := expt.SpecA.Scale(scale)
	g := expt.Build(spec, seed)

	oocRes, err := oocScenario(g, reps)
	if err != nil {
		return nil, err
	}
	out = append(out, oocRes)

	hybridRes, err := hybridScenario(g, reps)
	if err != nil {
		return nil, err
	}
	out = append(out, hybridRes)
	return out, nil
}

type buildFunc struct {
	n     int
	build func(b *repro.GraphBuilder)
}

func sparseBuild(n, deg int, seed int64) buildFunc {
	return buildFunc{n: n, build: func(b *repro.GraphBuilder) {
		rng := rand.New(rand.NewSource(seed))
		target := int64(n) * int64(deg) / 2
		for i := int64(0); i < target; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				b.AddEdge(u, v)
			}
		}
	}}
}

func denseBuild(n int, seed int64) buildFunc {
	return buildFunc{n: n, build: func(b *repro.GraphBuilder) {
		rng := rand.New(rand.NewSource(seed))
		g := graph.PlantedGraph(rng, n, []graph.PlantedCliqueSpec{
			{Size: 24}, {Size: 18, Overlap: 6}, {Size: 14, Overlap: 4},
		}, n*8)
		graph.ForEachEdge(g, func(u, v int) bool {
			b.AddEdge(u, v)
			return true
		})
	}}
}

func facadeScenario(name string, rep repro.Representation, bf buildFunc, reps int) (scenarioResult, error) {
	b := repro.NewGraphBuilder(bf.n)
	b.WithRepresentation(rep)
	bf.build(b)
	g, err := b.Freeze()
	if err != nil {
		return scenarioResult{}, err
	}
	res := scenarioResult{Name: name, Bytes: g.Bytes()}
	for i := 0; i < reps; i++ {
		start := time.Now()
		count, err := repro.NewEnumerator(repro.WithBounds(3, 0)).Run(context.Background(), g, nil)
		if err != nil {
			return res, err
		}
		ns := time.Since(start).Nanoseconds()
		if i == 0 || ns < res.NsOp {
			res.NsOp = ns
		}
		res.Cliques = count
	}
	fmt.Printf("  bench %-40s done\n", name)
	return res, nil
}

func oocScenario(g *graph.Graph, reps int) (scenarioResult, error) {
	res := scenarioResult{Name: "enum/ooc-table1A-parallel4-compressed"}
	for i := 0; i < reps; i++ {
		dir, err := os.MkdirTemp("", "benchall-ooc-*")
		if err != nil {
			return res, err
		}
		start := time.Now()
		st, err := ooc.Enumerate(g, ooc.Options{Dir: dir, Workers: 4, Compress: true})
		ns := time.Since(start).Nanoseconds()
		if rmErr := os.RemoveAll(dir); rmErr != nil && err == nil {
			err = rmErr // leftover spill dirs skew every later trial
		}
		if err != nil {
			return res, err
		}
		if i == 0 || ns < res.NsOp {
			res.NsOp = ns
		}
		res.Cliques = st.Maximal
		res.Bytes = st.BytesWritten
	}
	fmt.Printf("  bench %-40s done\n", res.Name)
	return res, nil
}

func hybridScenario(g *graph.Graph, reps int) (scenarioResult, error) {
	inCore, err := core.Enumerate(g, core.Options{})
	if err != nil {
		return scenarioResult{}, err
	}
	res := scenarioResult{Name: "enum/hybrid-table1A-quarter-budget"}
	for i := 0; i < reps; i++ {
		dir, err := os.MkdirTemp("", "benchall-hybrid-*")
		if err != nil {
			return res, err
		}
		gov := membudget.New(inCore.PeakBytes / 4)
		start := time.Now()
		hres, err := hybrid.Enumerate(g, hybrid.Options{Workers: 1, Dir: dir, Gov: gov})
		ns := time.Since(start).Nanoseconds()
		if rmErr := os.RemoveAll(dir); rmErr != nil && err == nil {
			err = rmErr
		}
		if err != nil {
			return res, err
		}
		if i == 0 || ns < res.NsOp {
			res.NsOp = ns
		}
		res.Cliques = hres.MaximalCliques
		res.Bytes = gov.Peak()
	}
	fmt.Printf("  bench %-40s done\n", res.Name)
	return res, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
	os.Exit(1)
}
