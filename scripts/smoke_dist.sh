#!/bin/sh
# Distributed-enumeration smoke test: run the Table-1 graph through the
# dist coordinator with 3 exec/pipe workers, SIGKILL one worker process
# mid-level from outside (the real fault, not an injected one), and
# require (a) the run to survive via respawn + shard re-lease, (b) the
# printed maximal-clique stream to be byte-identical to the sequential
# reference, and (c) the persisted run report to show the re-leased
# shard.  CI runs this on every push.
#
# The kill is timing-dependent (the victim must hold a lease for a
# re-lease to be observable), so the kill run retries a few times; the
# stream-parity assertion applies to every attempt regardless.
set -eu

workdir=$(mktemp -d "${TMPDIR:-/tmp}/repro-smoke-dist-XXXXXX")
trap 'rm -rf "$workdir"' EXIT

echo "smoke-dist: building"
go build -o "$workdir/cliquer" ./cmd/cliquer
go build -o "$workdir/graphgen" ./cmd/graphgen

echo "smoke-dist: generating the Table-1 graph"
"$workdir/graphgen" -spec A -out "$workdir/a.el"

# Clique lines are vertex names separated by spaces; everything else the
# tool prints starts with a known prefix or is indented.
cliques() {
    grep -Ev '^(graph:|maximum clique:|done|interrupted|aborted| )' "$1" || true
}

echo "smoke-dist: sequential reference"
"$workdir/cliquer" -lo 3 -no-bound "$workdir/a.el" >"$workdir/ref.out"
cliques "$workdir/ref.out" >"$workdir/ref.cliques"
[ -s "$workdir/ref.cliques" ] || { echo "smoke-dist: reference emitted no cliques" >&2; exit 1; }
echo "smoke-dist: reference delivered $(wc -l <"$workdir/ref.cliques") cliques"

# Small shards = many leases per level, so a mid-run SIGKILL almost
# always lands on a worker with a lease in flight.
dist_run() {
    name=$1; rundir=$2
    "$workdir/cliquer" -lo 3 -no-bound \
        -dist 3 -ooc "$rundir" -ooc-compress -dist-shard-bytes 2048 \
        "$workdir/a.el" >"$workdir/$name.out"
}

check_stream() {
    name=$1
    cliques "$workdir/$name.out" >"$workdir/$name.cliques"
    if ! cmp -s "$workdir/ref.cliques" "$workdir/$name.cliques"; then
        echo "smoke-dist: $name clique stream diverges from the sequential reference" >&2
        diff "$workdir/ref.cliques" "$workdir/$name.cliques" | head -20 >&2
        exit 1
    fi
}

echo "smoke-dist: fault-free distributed run (3 workers)"
dist_run dist0 "$workdir/run0"
grep -q 'done (distributed)' "$workdir/dist0.out"
check_stream dist0
[ -f "$workdir/run0/dist-manifest.json" ] || {
    echo "smoke-dist: no run report after the fault-free run" >&2; exit 1; }
echo "smoke-dist: fault-free run matches the reference"

echo "smoke-dist: kill-a-worker runs"
releaseseen=0
for attempt in 1 2 3 4 5; do
    rundir="$workdir/run$attempt"
    dist_run "dist$attempt" "$rundir" &
    coordpid=$!
    # Workers exist from run start, but a kill only forces a re-lease if
    # the victim holds a lease — so wait until worker-produced output
    # shards appear (names embed the shard index and attempt), the proof
    # that leases are in flight, before picking a victim.
    killed=0
    while kill -0 "$coordpid" 2>/dev/null; do
        if ls "$rundir"/l*-s*-a*.ooc >/dev/null 2>&1; then
            wpid=$(pgrep -f "$workdir/cliquer -worker" 2>/dev/null | head -n 1 || true)
            if [ -n "$wpid" ]; then
                kill -9 "$wpid" 2>/dev/null && killed=1
                break
            fi
        fi
        sleep 0.01
    done
    if ! wait "$coordpid"; then
        echo "smoke-dist: attempt $attempt: coordinator did not survive the worker kill" >&2
        cat "$workdir/dist$attempt.out" >&2
        exit 1
    fi
    check_stream "dist$attempt"
    if [ "$killed" -ne 1 ]; then
        echo "smoke-dist: attempt $attempt: run finished before a worker could be killed; retrying"
        continue
    fi
    if grep -q '"reason"' "$rundir/dist-manifest.json"; then
        if grep -q '"worker_deaths": 0' "$rundir/dist-manifest.json"; then
            echo "smoke-dist: attempt $attempt: report shows a release but no death" >&2
            exit 1
        fi
        echo "smoke-dist: attempt $attempt: worker killed, shard re-leased, stream identical"
        releaseseen=1
        # CI uploads the coordinator's run report as an artifact: the
        # manifest of the kill run, re-leased shard included.
        if [ -n "${DIST_MANIFEST_OUT:-}" ]; then
            cp "$rundir/dist-manifest.json" "$DIST_MANIFEST_OUT"
            echo "smoke-dist: manifest copied to $DIST_MANIFEST_OUT"
        fi
        break
    fi
    echo "smoke-dist: attempt $attempt: kill landed on an idle worker (no lease to re-lease); retrying"
done
if [ "$releaseseen" -ne 1 ]; then
    echo "smoke-dist: no attempt produced a re-leased shard" >&2
    exit 1
fi

echo "smoke-dist: PASS"
