#!/bin/sh
# Query-service smoke test: boot cliqued on a random port, load the
# Table-1 graph over HTTP, and require (a) the streamed text enumeration
# to be byte-identical to cliquer's output on the same graph, (b) the
# repeated query to be served from the result cache (X-Cliqued-Cache:
# hit) with identical bytes, and (c) a client killed mid-stream to leave
# the server healthy with the governor back at the pinned-graph
# baseline.  CI runs this on every push.
set -eu

workdir=$(mktemp -d "${TMPDIR:-/tmp}/repro-smoke-cliqued-XXXXXX")
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "smoke-cliqued: building"
go build -o "$workdir/graphgen" ./cmd/graphgen
go build -o "$workdir/cliquer" ./cmd/cliquer
go build -o "$workdir/cliqued" ./cmd/cliqued

echo "smoke-cliqued: generating the Table-1 graph"
"$workdir/graphgen" -spec A -out "$workdir/a.el"

# Clique lines are vertex names separated by spaces; everything else
# cliquer prints starts with a known prefix or is indented.
"$workdir/cliquer" -lo 3 -no-bound "$workdir/a.el" \
    | grep -Ev '^(graph:|maximum clique:|done|interrupted|aborted| )' >"$workdir/ref.cliques" || true
[ -s "$workdir/ref.cliques" ] || { echo "smoke-cliqued: cliquer emitted no cliques" >&2; exit 1; }
echo "smoke-cliqued: cliquer reference delivered $(wc -l <"$workdir/ref.cliques") cliques"

echo "smoke-cliqued: starting the daemon"
"$workdir/cliqued" -addr 127.0.0.1:0 -mem-budget 268435456 >"$workdir/daemon.log" 2>&1 &
daemon_pid=$!

base=""
for _ in $(seq 1 50); do
    base=$(sed -n 's/^cliqued: listening on \(.*\)$/http:\/\/\1/p' "$workdir/daemon.log")
    [ -n "$base" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { echo "smoke-cliqued: daemon died at startup" >&2; cat "$workdir/daemon.log" >&2; exit 1; }
    sleep 0.1
done
[ -n "$base" ] || { echo "smoke-cliqued: daemon never announced its address" >&2; cat "$workdir/daemon.log" >&2; exit 1; }
echo "smoke-cliqued: daemon is at $base"

fp=$(curl -sf -X POST --data-binary @"$workdir/a.el" "$base/graphs?name=a" \
    | sed -n 's/.*"fingerprint":"\([0-9a-f]*\)".*/\1/p')
[ -n "$fp" ] || { echo "smoke-cliqued: graph load returned no fingerprint" >&2; exit 1; }
echo "smoke-cliqued: loaded graph $fp"

# Governor baseline with the graph pinned and nothing running.
baseline=$(curl -sf "$base/healthz" | sed -n 's/.*"used":\([0-9]*\).*/\1/p')

echo "smoke-cliqued: streaming enumeration (text, lo=3)"
curl -sf -D "$workdir/h1" "$base/graphs/$fp/cliques?format=text&lo=3" >"$workdir/stream1"
grep -qi '^x-cliqued-cache: miss' "$workdir/h1" || { echo "smoke-cliqued: first query did not report a cache miss" >&2; cat "$workdir/h1" >&2; exit 1; }
if ! cmp -s "$workdir/ref.cliques" "$workdir/stream1"; then
    echo "smoke-cliqued: streamed cliques diverge from cliquer output" >&2
    diff "$workdir/ref.cliques" "$workdir/stream1" | head -20 >&2
    exit 1
fi
echo "smoke-cliqued: stream matches cliquer byte for byte"

echo "smoke-cliqued: repeating the query (must hit the cache)"
curl -sf -D "$workdir/h2" "$base/graphs/$fp/cliques?format=text&lo=3" >"$workdir/stream2"
grep -qi '^x-cliqued-cache: hit' "$workdir/h2" || { echo "smoke-cliqued: repeat query missed the cache" >&2; cat "$workdir/h2" >&2; exit 1; }
cmp -s "$workdir/stream1" "$workdir/stream2" || { echo "smoke-cliqued: cached replay diverges from the original stream" >&2; exit 1; }
echo "smoke-cliqued: cache hit, replay identical"

echo "smoke-cliqued: killing a client mid-stream"
# head exits after one small read; the broken pipe kills curl and the
# server sees the disconnect while the enumeration is still running.
curl -s -N "$base/graphs/$fp/cliques?format=text&lo=3&mode=lowmem" | head -c 200 >/dev/null || true

ok=""
for _ in $(seq 1 100); do
    health=$(curl -sf "$base/healthz") || { echo "smoke-cliqued: healthz failed after disconnect" >&2; exit 1; }
    used=$(printf '%s' "$health" | sed -n 's/.*"used":\([0-9]*\).*/\1/p')
    active=$(printf '%s' "$health" | sed -n 's/.*"active_queries":\([0-9]*\).*/\1/p')
    residual=$(printf '%s' "$health" | sed -n 's/.*"residual_bytes":\([0-9]*\).*/\1/p')
    if [ "$used" = "$baseline" ] && [ "$active" = "0" ]; then
        [ "$residual" = "0" ] || { echo "smoke-cliqued: disconnect left residual_bytes=$residual" >&2; exit 1; }
        ok=1
        break
    fi
    sleep 0.1
done
[ -n "$ok" ] || { echo "smoke-cliqued: governor never returned to baseline $baseline after disconnect: $health" >&2; exit 1; }
echo "smoke-cliqued: memory back to baseline ($baseline bytes), server healthy"

# The server still answers queries after the abandoned stream.
curl -sf "$base/graphs/$fp/cliques?format=text&lo=5" >/dev/null \
    || { echo "smoke-cliqued: query after disconnect failed" >&2; exit 1; }

kill "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
echo "smoke-cliqued: PASS"
