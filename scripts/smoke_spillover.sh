#!/bin/sh
# Adaptive-spillover smoke test: run the Table-1 graph through cliquer
# three ways — unconstrained in-core (the reference), hybrid with a
# budget sized to trip the governor mid-run, and hybrid from a parallel
# in-core start — and require (a) that the budgeted runs really spilled
# and (b) that every run printed the byte-identical maximal-clique
# stream.  CI runs this on every push.
set -eu

workdir=$(mktemp -d "${TMPDIR:-/tmp}/repro-smoke-spill-XXXXXX")
trap 'rm -rf "$workdir"' EXIT

echo "smoke-spillover: building"
go build -o "$workdir/graphgen" ./cmd/graphgen
go build -o "$workdir/cliquer" ./cmd/cliquer

echo "smoke-spillover: generating the Table-1 graph"
"$workdir/graphgen" -spec A -out "$workdir/a.el"

# Clique lines are vertex names separated by spaces; everything else the
# tool prints (graph header, summary, spillover notes) starts with a
# known prefix or is indented.
cliques() {
    grep -Ev '^(graph:|maximum clique:|done|interrupted|aborted| )' "$1" || true
}

echo "smoke-spillover: unconstrained in-core reference"
"$workdir/cliquer" -lo 3 -no-bound "$workdir/a.el" >"$workdir/ref.out"
cliques "$workdir/ref.out" >"$workdir/ref.cliques"
[ -s "$workdir/ref.cliques" ] || { echo "smoke-spillover: reference emitted no cliques" >&2; exit 1; }
echo "smoke-spillover: reference delivered $(wc -l <"$workdir/ref.cliques") cliques"

# The graph-A unconstrained peak is ~21 MB on this generator; a 400 KB
# budget comfortably exceeds the CSR adjacency (~100 KB) yet trips a few
# levels in — a genuine mid-run spill, not an immediate one.
budget=400000

check_run() {
    name=$1; shift
    "$workdir/cliquer" "$@" "$workdir/a.el" >"$workdir/$name.out"
    grep -q 'spillover: governor tripped generating level' "$workdir/$name.out" || {
        echo "smoke-spillover: $name did not spill (budget $budget)" >&2
        cat "$workdir/$name.out" >&2
        exit 1
    }
    cliques "$workdir/$name.out" >"$workdir/$name.cliques"
    if ! cmp -s "$workdir/ref.cliques" "$workdir/$name.cliques"; then
        echo "smoke-spillover: $name clique stream diverges from the in-core reference" >&2
        diff "$workdir/ref.cliques" "$workdir/$name.cliques" | head -20 >&2
        exit 1
    fi
    echo "smoke-spillover: $name matches the reference ($(sed -n 's/.*spillover: governor tripped generating level \([0-9]*\).*/spilled at level \1/p' "$workdir/$name.out"))"
}

echo "smoke-spillover: hybrid run (sequential start, -mem-budget $budget)"
check_run hybrid-seq -lo 3 -no-bound -ooc "$workdir/spill1" -mem-budget "$budget"

echo "smoke-spillover: hybrid run (parallel start, 2 workers, compressed spill)"
check_run hybrid-par -lo 3 -no-bound -workers 2 -ooc "$workdir/spill2" -ooc-compress -mem-budget "$budget"

# Spill directories must be empty again: hybrid runs use private temp
# run directories and remove them.
for d in "$workdir/spill1" "$workdir/spill2"; do
    if [ -d "$d" ] && [ -n "$(ls -A "$d")" ]; then
        echo "smoke-spillover: leftover spill files in $d" >&2
        ls -l "$d" >&2
        exit 1
    fi
done

echo "smoke-spillover: PASS"
