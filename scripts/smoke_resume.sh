#!/bin/sh
# Resume-after-kill smoke test: run the out-of-core enumerator with a
# checkpoint and a wall-clock timeout that kills it mid-run, then resume
# the checkpoint and verify the run completes with the same total clique
# count as an uninterrupted reference run.  CI runs this on every push.
#
# The kill timeout is derived from the measured wall time of the
# reference run on this machine (not hard-coded), and the kill is
# retried with a halved timeout if the run outruns it — so the gate
# does not flake across faster or slower runners.
set -eu

workdir=$(mktemp -d "${TMPDIR:-/tmp}/repro-smoke-XXXXXX")
trap 'rm -rf "$workdir"' EXIT

echo "smoke-resume: building"
go build -o "$workdir/graphgen" ./cmd/graphgen
go build -o "$workdir/cliquer" ./cmd/cliquer

echo "smoke-resume: generating the Table-1 graph"
"$workdir/graphgen" -spec A -out "$workdir/a.el"

echo "smoke-resume: uninterrupted reference run"
start_ns=$(date +%s%N)
"$workdir/cliquer" -lo 3 -no-bound -count \
    -ooc "$workdir/ref" -ooc-compress -ooc-workers 2 \
    "$workdir/a.el" >"$workdir/ref.out"
ref_ms=$(( ($(date +%s%N) - start_ns) / 1000000 ))
ref_count=$(sed -n 's/^done (out-of-core): \([0-9]*\) maximal cliques.*/\1/p' "$workdir/ref.out")
echo "smoke-resume: reference found $ref_count maximal cliques in ${ref_ms}ms"

# Kill mid-run: start at half the measured reference time and halve on
# every attempt that finishes before the timeout.  The first checkpoint
# is committed right after the (fast) edge spill, so shorter timeouts
# only make the kill land earlier, not miss the manifest.
timeout_ms=$(( ref_ms / 2 ))
[ "$timeout_ms" -lt 40 ] && timeout_ms=40
killed=0
for attempt in 1 2 3 4 5; do
    ckdir="$workdir/ck$attempt"
    echo "smoke-resume: checkpointed run, kill attempt $attempt (-timeout ${timeout_ms}ms)"
    if "$workdir/cliquer" -lo 3 -no-bound -count \
        -ooc "$ckdir" -ooc-checkpoint -ooc-compress -ooc-workers 2 \
        -timeout "${timeout_ms}ms" \
        "$workdir/a.el" >"$workdir/kill.out" 2>&1; then
        echo "smoke-resume: run finished before the timeout; retrying with a shorter one"
        timeout_ms=$(( timeout_ms / 2 ))
        [ "$timeout_ms" -lt 10 ] && break
        continue
    fi
    killed=1
    break
done
if [ "$killed" -ne 1 ]; then
    echo "smoke-resume: could not kill the run mid-flight even at ${timeout_ms}ms" >&2
    exit 1
fi
if [ ! -f "$ckdir/ooc-manifest.json" ]; then
    echo "smoke-resume: killed run left no checkpoint manifest" >&2
    cat "$workdir/kill.out" >&2
    exit 1
fi
killed_count=$(sed -n 's/^interrupted (out-of-core): \([0-9]*\) maximal cliques.*/\1/p' "$workdir/kill.out")
echo "smoke-resume: killed after delivering ${killed_count:-0} cliques"

echo "smoke-resume: resuming the checkpoint"
"$workdir/cliquer" -lo 3 -no-bound -count \
    -resume "$ckdir" -ooc-workers 2 \
    "$workdir/a.el" >"$workdir/resume.out"
grep -q "spill (resumed):" "$workdir/resume.out"
resumed_count=$(sed -n 's/^done (out-of-core): \([0-9]*\) maximal cliques.*/\1/p' "$workdir/resume.out")
echo "smoke-resume: resumed run delivered $resumed_count cliques"

if [ -f "$ckdir/ooc-manifest.json" ]; then
    echo "smoke-resume: completed resume left its manifest behind" >&2
    exit 1
fi

# The resumed run re-emits the interrupted level, so killed + resumed
# covers the reference count with a bounded overlap:
#   resumed <= reference  and  killed + resumed >= reference.
total=$((${killed_count:-0} + resumed_count))
if [ "$resumed_count" -gt "$ref_count" ] || [ "$total" -lt "$ref_count" ]; then
    echo "smoke-resume: counts do not reconcile: killed=${killed_count:-0} resumed=$resumed_count reference=$ref_count" >&2
    exit 1
fi
echo "smoke-resume: OK (killed=${killed_count:-0} resumed=$resumed_count reference=$ref_count)"
