package repro_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro"
)

// TestHybridSpilloverParityAcrossRepresentations is the PR's acceptance
// property at the facade: a run that trips the memory governor
// mid-enumeration produces the byte-identical ordered clique stream of
// an unconstrained in-core run, for sequential and parallel starts,
// across all three graph representations.  (The "Representation" in the
// name opts it into the make race-repr gate.)
func TestHybridSpilloverParityAcrossRepresentations(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		g := testGraph(seed, 80, 0.15)
		want := stream(t, repro.NewEnumerator(repro.WithBounds(3, 0)), g)
		if len(want) == 0 {
			t.Fatalf("seed %d: no cliques from the reference run", seed)
		}
		for _, rep := range []repro.Representation{repro.Dense, repro.CSR, repro.Compressed} {
			// The governor charges the representation's adjacency bytes
			// first, so the mid-run trip point is budgeted on top of them.
			conv, err := repro.ConvertGraph(g, rep)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 3} {
				for _, extra := range []int64{1, 2048} { // immediate and mid-run trips
					var st repro.Stats
					opts := []repro.Option{
						repro.WithBounds(3, 0),
						repro.WithGraphRepresentation(rep),
						repro.WithSpillover(t.TempDir()),
						repro.WithMemoryBudget(conv.Bytes() + extra),
						repro.WithStats(&st),
					}
					if workers > 1 {
						opts = append(opts, repro.WithWorkers(workers))
					}
					got := stream(t, repro.NewEnumerator(opts...), g)
					if len(got) != len(want) {
						t.Fatalf("seed %d rep %s workers %d extra %d: %d cliques, want %d (backend %s)",
							seed, rep, workers, extra, len(got), len(want), st.Backend)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("seed %d rep %s workers %d extra %d: stream diverges at %d",
								seed, rep, workers, extra, i)
						}
					}
					if st.SpilledAtLevel == 0 {
						t.Errorf("seed %d rep %s workers %d extra %d: never spilled (backend %s, peak %d)",
							seed, rep, workers, extra, st.Backend, st.PeakBytes)
					}
					if !strings.HasPrefix(st.Backend, "hybrid(") || !strings.Contains(st.Backend, "out-of-core@") {
						t.Errorf("spilled run's backend = %q", st.Backend)
					}
					if st.PeakBytes == 0 {
						t.Errorf("hybrid run reported no PeakBytes")
					}
				}
			}
		}
	}
}

// TestHybridStaysInCoreUnderBudget: with a generous budget the hybrid
// backend never touches the disk and says so in its stats.
func TestHybridStaysInCoreUnderBudget(t *testing.T) {
	g := testGraph(4, 70, 0.15)
	var st repro.Stats
	want := stream(t, repro.NewEnumerator(repro.WithBounds(3, 0)), g)
	got := stream(t, repro.NewEnumerator(
		repro.WithBounds(3, 0),
		repro.WithSpillover(t.TempDir()),
		repro.WithMemoryBudget(1<<30),
		repro.WithStats(&st)), g)
	if len(got) != len(want) {
		t.Fatalf("%d cliques, want %d", len(got), len(want))
	}
	if st.SpilledAtLevel != 0 || st.SpillBytesWritten != 0 {
		t.Fatalf("in-core hybrid run spilled: %+v", st)
	}
	if st.Backend != "hybrid(sequential)" {
		t.Fatalf("backend = %q, want hybrid(sequential)", st.Backend)
	}
	if st.PeakBytes == 0 {
		t.Fatal("no PeakBytes on an unspilled hybrid run")
	}
}

// TestMemoryBudgetEnforcedOnEveryInCoreBackend: the governor now
// enforces WithMemoryBudget on the parallel and barrier pools too (the
// combinations enumcfg used to reject), aborting with ErrMemoryBudget,
// and every backend reports the governor's peak.
func TestMemoryBudgetEnforcedOnEveryInCoreBackend(t *testing.T) {
	g := testGraph(3, 120, 0.25)
	for _, b := range []struct {
		name string
		opts []repro.Option
	}{
		{"sequential", nil},
		{"parallel", []repro.Option{repro.WithWorkers(4)}},
		{"barrier", []repro.Option{repro.WithWorkers(4), repro.WithBarrier()}},
	} {
		t.Run(b.name, func(t *testing.T) {
			var st repro.Stats
			opts := append(append([]repro.Option{}, b.opts...),
				repro.WithBounds(3, 0), repro.WithMemoryBudget(4<<10), repro.WithStats(&st))
			_, err := repro.NewEnumerator(opts...).Run(context.Background(), g, nil)
			if err == nil {
				t.Fatal("tiny budget did not abort")
			}
			if !errors.Is(err, repro.ErrMemoryBudget) {
				t.Fatalf("error %v does not wrap ErrMemoryBudget", err)
			}
			if st.PeakBytes == 0 {
				t.Error("aborted run reported no PeakBytes")
			}
		})
	}
}

// TestParacliquesFillsStats pins the satellite bugfix: the registered
// WithStats sink is populated by Paracliques, as its doc promises.
func TestParacliquesFillsStats(t *testing.T) {
	g := testGraph(4, 60, 0.1)
	var st repro.Stats
	ps, err := repro.NewEnumerator(repro.WithStats(&st)).Paracliques(context.Background(), g, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) == 0 {
		t.Fatal("no paracliques on the test graph")
	}
	if st.Backend != "paraclique" {
		t.Errorf("Backend = %q, want %q", st.Backend, "paraclique")
	}
	if st.Elapsed <= 0 {
		t.Error("Elapsed not populated")
	}
	if st.Paracliques != len(ps) {
		t.Errorf("Stats.Paracliques = %d, want %d", st.Paracliques, len(ps))
	}
	if st.MaximalCliques != int64(len(ps)) {
		t.Errorf("Stats.MaximalCliques = %d, want %d", st.MaximalCliques, len(ps))
	}
	if st.PeakBytes == 0 {
		t.Error("PeakBytes not populated")
	}
	maxCore := 0
	for _, p := range ps {
		if p.CoreSize > maxCore {
			maxCore = p.CoreSize
		}
	}
	if st.MaxCliqueSize != maxCore {
		t.Errorf("MaxCliqueSize = %d, want the largest seed core %d", st.MaxCliqueSize, maxCore)
	}
}

// TestHybridCancellation: Ctrl-C semantics survive the spill — the
// partial stream is a prefix of the reference and the error wraps the
// context error.
func TestHybridCancellation(t *testing.T) {
	g := testGraph(3, 150, 0.22)
	want := stream(t, repro.NewEnumerator(repro.WithBounds(3, 0)), g)
	if len(want) < 40 {
		t.Fatalf("only %d cliques; need a longer run", len(want))
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var got []string
	var st repro.Stats
	_, err := repro.NewEnumerator(
		repro.WithBounds(3, 0),
		repro.WithSpillover(t.TempDir()),
		repro.WithMemoryBudget(1), // trip immediately: the whole run drains
		repro.WithStats(&st),
	).Run(ctx, g, repro.ReporterFunc(func(c repro.Clique) {
		got = append(got, c.Key())
		if len(got) == len(want)/2 {
			cancel()
		}
	}))
	if err == nil {
		t.Fatal("run completed despite cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	for i, k := range got {
		if k != want[i] {
			t.Fatalf("canceled hybrid stream diverges from the reference at %d", i)
		}
	}
	if st.SpilledAtLevel == 0 {
		t.Error("budget 1 did not spill before the cancel")
	}
}
