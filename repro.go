// Package repro is a Go reproduction of "Genome-Scale Computational
// Approaches to Memory-Intensive Applications in Systems Biology"
// (Zhang, Abu-Khzam, Baldwin, Chesler, Langston, Samatova; SC|05).
//
// The primary contribution is the Clique Enumerator: exact enumeration of
// all maximal cliques of an undirected graph in non-decreasing order of
// size, over a bitmap (bit-string) adjacency substrate, bounded below by
// a k-clique seeder and above by an exact maximum-clique computation.
// The paper retargets this one algorithm across execution regimes —
// in-core sequential, out-of-core disk-backed, and shared-memory parallel
// — and so does this package: Enumerator is the single facade over all
// three backends, selected by functional options behind one
// Run(ctx, ...) / Cliques(ctx, ...) entry point:
//
//	enum := repro.NewEnumerator(
//	    repro.WithBounds(5, 0),
//	    repro.WithWorkers(8),
//	    repro.WithStrategy(repro.Affinity),
//	)
//	for c, err := range enum.Cliques(ctx, g) { ... }
//
// See README.md for the architecture map and migration table, and
// DESIGN.md for the paper-to-module inventory.
package repro

import (
	"context"

	"repro/internal/clique"
	"repro/internal/graph"
	"repro/internal/maxclique"
	"repro/internal/paraclique"
)

// Graph is an undirected simple graph with dense bitmap adjacency rows —
// the paper's "globally addressable bitmap memory index" and the default
// representation.
type Graph = graph.Graph

// GraphInterface is the representation-independent read contract every
// enumeration entry point accepts: *Graph (dense), *CSRGraph and
// *CompressedGraph all implement it.  Obtain non-dense graphs from
// NewGraphBuilder, ConvertGraph, the *Rep readers, or
// CorrelationGraphRep.
type GraphInterface = graph.Interface

// CSRGraph is the compressed-sparse-row adjacency backend: 4(n+1+2m)
// bytes, the O(n+m) representation for genome-scale sparse graphs.
type CSRGraph = graph.CSRGraph

// CompressedGraph stores one WAH-compressed bitmap per adjacency row —
// the paper's §5 compressed-bitmap direction applied to the graph
// substrate itself.
type CompressedGraph = graph.CompressedGraph

// Representation names an adjacency storage backend.
type Representation = graph.Representation

const (
	// Auto selects Dense or CSR from the measured edge density.
	Auto = graph.Auto
	// Dense is the paper's bitmap index: n*ceil(n/64)*8 adjacency bytes.
	Dense = graph.Dense
	// CSR is compressed sparse row: 4(n+1+2m) adjacency bytes.
	CSR = graph.CSR
	// Compressed is WAH-compressed bitmap rows: measured per graph.
	Compressed = graph.Compressed
)

// ParseRepresentation parses "auto", "dense", "csr" or "wah" (alias
// "compressed") — the names the cliquer -repr flag speaks.
func ParseRepresentation(s string) (Representation, error) {
	return graph.ParseRepresentation(s)
}

// GraphBuilder is the streaming, append-only construction path: AddEdge/
// SetName return errors (never panic), duplicates collapse at Freeze,
// and Freeze picks the representation from measured density unless one
// was pinned with WithRepresentation.  The frozen graph is immutable.
type GraphBuilder = graph.Builder

// NewGraphBuilder returns a streaming builder over n vertices with
// automatic representation selection.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// ConvertGraph returns g in the requested representation, re-encoding
// only when necessary (g itself is returned when it already matches).
func ConvertGraph(g GraphInterface, rep Representation) (GraphInterface, error) {
	return graph.Convert(g, rep)
}

// DenseAdjacencyBytes returns the adjacency footprint a dense graph on n
// vertices would occupy, without allocating it — the baseline the
// sparse-representation memory wins are measured against.
func DenseAdjacencyBytes(n int) int64 { return graph.DenseAdjacencyBytes(n) }

// Density returns m / (n choose 2) for any representation (0 for
// graphs with fewer than two vertices).
func Density(g GraphInterface) float64 { return graph.Density(g) }

// Clique is a set of vertices in canonical (increasing) order.  Cliques
// passed to a Reporter are borrowed: Clone before retaining.  Cliques
// yielded by Enumerator.Cliques are owned copies.
type Clique = clique.Clique

// NewGraph returns an edgeless graph on n vertices; add edges with
// g.AddEdge(u, v).
func NewGraph(n int) *Graph { return graph.New(n) }

// MaxClique returns a maximum clique of g (exact, branch-and-bound with
// greedy-coloring bounds).  Any representation is accepted; non-dense
// graphs are densified for the search.
func MaxClique(g GraphInterface) []int { return maxclique.Find(g) }

// MaxCliqueContext is MaxClique with cancellation: the search polls ctx
// between branch-and-bound node expansions and returns ctx's error when
// it is canceled.  The search is worst-case exponential, so any caller
// serving it to a client that can go away (cliqued's /maxclique) should
// use this form — cancellation is what turns a disconnect into freed
// CPU instead of a search that runs to completion unobserved.
func MaxCliqueContext(ctx context.Context, g GraphInterface) ([]int, error) {
	return maxclique.FindContext(ctx, g)
}

// MaxCliqueSize returns ω(g) — the upper bound the paper feeds to
// WithBounds.
func MaxCliqueSize(g GraphInterface) int { return maxclique.Size(g) }

// EnumerateMaximalCliques reports every maximal clique of g with size in
// [lo, hi] to visit, in non-decreasing order of size (hi = 0 means
// unbounded above).  It returns the number of maximal cliques reported.
//
// Deprecated: use NewEnumerator(WithBounds(lo, hi)).Run or .Cliques,
// which add cancellation, backend selection, and statistics.
func EnumerateMaximalCliques(g GraphInterface, lo, hi int, visit func(Clique)) (int64, error) {
	var rep Reporter
	if visit != nil {
		rep = ReporterFunc(visit)
	}
	return NewEnumerator(WithBounds(lo, hi)).Run(context.Background(), g, rep)
}

// EnumerateParallel is EnumerateMaximalCliques on the multithreaded
// backend with the paper's affinity load balancing.  Output order is
// identical to the sequential enumerator.
//
// Deprecated: use NewEnumerator(WithBounds(lo, hi), WithWorkers(workers),
// WithStrategy(Affinity)).Run or .Cliques.
func EnumerateParallel(g GraphInterface, workers, lo, hi int, visit func(Clique)) (int64, error) {
	var rep Reporter
	if visit != nil {
		rep = ReporterFunc(visit)
	}
	e := NewEnumerator(WithBounds(lo, hi), WithWorkers(workers), WithStrategy(Affinity))
	return e.Run(context.Background(), g, rep)
}

// Paraclique is a dense near-clique module.
type Paraclique = paraclique.Paraclique

// Paracliques decomposes g into paracliques with the given proportional
// glom factor (0 < glom <= 1; 0 selects the historical default 0.8).
//
// Deprecated: use NewEnumerator().Paracliques(ctx, g, glom), which adds
// cancellation, composes with WithBounds, and reports invalid gloms as
// errors instead of panicking.
func Paracliques(g GraphInterface, glom float64) []Paraclique {
	if glom == 0 {
		glom = 0.8 // the pre-facade default
	}
	ps, err := NewEnumerator().Paracliques(context.Background(), g, glom)
	if err != nil {
		panic(err) // out-of-range glom panicked before the facade, too
	}
	return ps
}
