// Package repro is a Go reproduction of "Genome-Scale Computational
// Approaches to Memory-Intensive Applications in Systems Biology"
// (Zhang, Abu-Khzam, Baldwin, Chesler, Langston, Samatova; SC|05).
//
// The primary contribution is the Clique Enumerator: exact enumeration of
// all maximal cliques of an undirected graph in non-decreasing order of
// size, over a bitmap (bit-string) adjacency substrate, bounded below by
// a k-clique seeder and above by an exact maximum-clique computation, and
// parallelized level-synchronously with centralized dynamic load
// balancing.  This package is the stable facade over the implementation
// packages; see README.md for the architecture map and DESIGN.md for the
// paper-to-module inventory.
package repro

import (
	"repro/internal/clique"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/maxclique"
	"repro/internal/paraclique"
	"repro/internal/parallel"
)

// Graph is an undirected simple graph with bitmap adjacency rows.
type Graph = graph.Graph

// Clique is a set of vertices in canonical (increasing) order.  Cliques
// passed to visitors are borrowed: copy before retaining.
type Clique = clique.Clique

// NewGraph returns an edgeless graph on n vertices; add edges with
// g.AddEdge(u, v).
func NewGraph(n int) *Graph { return graph.New(n) }

// MaxClique returns a maximum clique of g (exact, branch-and-bound with
// greedy-coloring bounds).
func MaxClique(g *Graph) []int { return maxclique.Find(g) }

// MaxCliqueSize returns ω(g).
func MaxCliqueSize(g *Graph) int { return maxclique.Size(g) }

// EnumerateMaximalCliques reports every maximal clique of g with size in
// [lo, hi] to visit, in non-decreasing order of size (hi = 0 means
// unbounded above).  It returns the number of maximal cliques reported.
func EnumerateMaximalCliques(g *Graph, lo, hi int, visit func(Clique)) (int64, error) {
	var rep clique.Reporter
	if visit != nil {
		rep = clique.ReporterFunc(visit)
	}
	res, err := core.Enumerate(g, core.Options{Lo: lo, Hi: hi, Reporter: rep})
	if err != nil {
		return 0, err
	}
	return res.MaximalCliques, nil
}

// EnumerateParallel is EnumerateMaximalCliques on the multithreaded
// backend: a persistent streaming worker pool with the paper's
// affinity-plus-threshold load balancing applied continuously (idle
// workers steal from over-threshold backlogs), parallel seeding, and
// streamed in-order emission.  Output order is identical to the
// sequential enumerator: non-decreasing size, lexicographic within a
// size.
func EnumerateParallel(g *Graph, workers, lo, hi int, visit func(Clique)) (int64, error) {
	var rep clique.Reporter
	if visit != nil {
		rep = clique.ReporterFunc(visit)
	}
	res, err := parallel.Enumerate(g, parallel.Options{
		Workers:  workers,
		Lo:       lo,
		Hi:       hi,
		Strategy: parallel.Affinity,
		Reporter: rep,
	})
	if err != nil {
		return 0, err
	}
	return res.MaximalCliques, nil
}

// Paraclique is a dense near-clique module.
type Paraclique = paraclique.Paraclique

// Paracliques decomposes g into paracliques with the given proportional
// glom factor (0 < glom <= 1).
func Paracliques(g *Graph, glom float64) []Paraclique {
	return paraclique.Extract(g, paraclique.Options{Glom: glom})
}
