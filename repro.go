// Package repro is a Go reproduction of "Genome-Scale Computational
// Approaches to Memory-Intensive Applications in Systems Biology"
// (Zhang, Abu-Khzam, Baldwin, Chesler, Langston, Samatova; SC|05).
//
// The primary contribution is the Clique Enumerator: exact enumeration of
// all maximal cliques of an undirected graph in non-decreasing order of
// size, over a bitmap (bit-string) adjacency substrate, bounded below by
// a k-clique seeder and above by an exact maximum-clique computation.
// The paper retargets this one algorithm across execution regimes —
// in-core sequential, out-of-core disk-backed, and shared-memory parallel
// — and so does this package: Enumerator is the single facade over all
// three backends, selected by functional options behind one
// Run(ctx, ...) / Cliques(ctx, ...) entry point:
//
//	enum := repro.NewEnumerator(
//	    repro.WithBounds(5, 0),
//	    repro.WithWorkers(8),
//	    repro.WithStrategy(repro.Affinity),
//	)
//	for c, err := range enum.Cliques(ctx, g) { ... }
//
// See README.md for the architecture map and migration table, and
// DESIGN.md for the paper-to-module inventory.
package repro

import (
	"context"

	"repro/internal/clique"
	"repro/internal/graph"
	"repro/internal/maxclique"
	"repro/internal/paraclique"
)

// Graph is an undirected simple graph with bitmap adjacency rows.
type Graph = graph.Graph

// Clique is a set of vertices in canonical (increasing) order.  Cliques
// passed to a Reporter are borrowed: Clone before retaining.  Cliques
// yielded by Enumerator.Cliques are owned copies.
type Clique = clique.Clique

// NewGraph returns an edgeless graph on n vertices; add edges with
// g.AddEdge(u, v).
func NewGraph(n int) *Graph { return graph.New(n) }

// MaxClique returns a maximum clique of g (exact, branch-and-bound with
// greedy-coloring bounds).
func MaxClique(g *Graph) []int { return maxclique.Find(g) }

// MaxCliqueSize returns ω(g) — the upper bound the paper feeds to
// WithBounds.
func MaxCliqueSize(g *Graph) int { return maxclique.Size(g) }

// EnumerateMaximalCliques reports every maximal clique of g with size in
// [lo, hi] to visit, in non-decreasing order of size (hi = 0 means
// unbounded above).  It returns the number of maximal cliques reported.
//
// Deprecated: use NewEnumerator(WithBounds(lo, hi)).Run or .Cliques,
// which add cancellation, backend selection, and statistics.
func EnumerateMaximalCliques(g *Graph, lo, hi int, visit func(Clique)) (int64, error) {
	var rep Reporter
	if visit != nil {
		rep = ReporterFunc(visit)
	}
	return NewEnumerator(WithBounds(lo, hi)).Run(context.Background(), g, rep)
}

// EnumerateParallel is EnumerateMaximalCliques on the multithreaded
// backend with the paper's affinity load balancing.  Output order is
// identical to the sequential enumerator.
//
// Deprecated: use NewEnumerator(WithBounds(lo, hi), WithWorkers(workers),
// WithStrategy(Affinity)).Run or .Cliques.
func EnumerateParallel(g *Graph, workers, lo, hi int, visit func(Clique)) (int64, error) {
	var rep Reporter
	if visit != nil {
		rep = ReporterFunc(visit)
	}
	e := NewEnumerator(WithBounds(lo, hi), WithWorkers(workers), WithStrategy(Affinity))
	return e.Run(context.Background(), g, rep)
}

// Paraclique is a dense near-clique module.
type Paraclique = paraclique.Paraclique

// Paracliques decomposes g into paracliques with the given proportional
// glom factor (0 < glom <= 1; 0 selects the historical default 0.8).
//
// Deprecated: use NewEnumerator().Paracliques(ctx, g, glom), which adds
// cancellation, composes with WithBounds, and reports invalid gloms as
// errors instead of panicking.
func Paracliques(g *Graph, glom float64) []Paraclique {
	if glom == 0 {
		glom = 0.8 // the pre-facade default
	}
	ps, err := NewEnumerator().Paracliques(context.Background(), g, glom)
	if err != nil {
		panic(err) // out-of-range glom panicked before the facade, too
	}
	return ps
}
