package repro

import (
	"io"
	"math/rand"

	"repro/internal/microarray"
)

// The microarray front end, promoted to the facade: expression matrix in,
// thresholded relationship graph out, composing with Enumerator for the
// paper's primary application — "cliques of genes whose expression levels
// are highly correlated across conditions".
//
//	mat, _ := repro.ReadExpressionTSV(f)
//	mat.Normalize()
//	g := repro.CorrelationGraph(mat, repro.SpearmanRank, 0.85)
//	enum := repro.NewEnumerator(repro.WithBounds(5, 0), repro.WithWorkers(8))
//	for c, err := range enum.Cliques(ctx, g) { ... }

// ExpressionMatrix is a genes x conditions expression matrix with
// optional probe names.
type ExpressionMatrix = microarray.Matrix

// ModuleSpec plants one co-expression module in a synthetic matrix.
type ModuleSpec = microarray.ModuleSpec

// SyntheticConfig configures SynthesizeExpression.
type SyntheticConfig = microarray.SyntheticConfig

// CorrelationMethod selects the pairwise coefficient.
type CorrelationMethod = microarray.CorrelationMethod

const (
	// SpearmanRank is the paper's "pairwise rank coefficient".
	SpearmanRank = microarray.SpearmanRank
	// PearsonProduct is the plain product-moment alternative.
	PearsonProduct = microarray.PearsonProduct
)

// NewExpressionMatrix returns a zeroed genes x conditions matrix.
func NewExpressionMatrix(genes, conditions int) *ExpressionMatrix {
	return microarray.NewMatrix(genes, conditions)
}

// SynthesizeExpression generates a synthetic expression matrix with
// planted co-expression modules — the stand-in for array data in the
// examples and tests.
func SynthesizeExpression(rng *rand.Rand, cfg SyntheticConfig) *ExpressionMatrix {
	return microarray.Synthesize(rng, cfg)
}

// ReadExpressionTSV parses a tab-separated expression matrix (one row
// per gene, first column the probe name).
func ReadExpressionTSV(r io.Reader) (*ExpressionMatrix, error) {
	return microarray.ReadTSV(r)
}

// WriteExpressionTSV writes m in the same TSV format.
func WriteExpressionTSV(w io.Writer, m *ExpressionMatrix) error {
	return microarray.WriteTSV(w, m)
}

// CorrelationGraph thresholds the pairwise correlation matrix of m into
// a dense relationship graph: vertices are genes, an edge joins two
// genes with |coefficient| >= threshold.
func CorrelationGraph(m *ExpressionMatrix, method CorrelationMethod, threshold float64) *Graph {
	return microarray.CorrelationGraph(m, method, threshold)
}

// CorrelationGraphRep is CorrelationGraph with an explicit adjacency
// representation.  Auto picks Dense or CSR from the thresholded density,
// so a genome-scale sparse coexpression graph comes back CSR — O(n+m)
// bytes — without the dense bitmap index ever being materialized.
func CorrelationGraphRep(m *ExpressionMatrix, method CorrelationMethod, threshold float64, rep Representation) (GraphInterface, error) {
	return microarray.CorrelationGraphRep(m, method, threshold, rep)
}

// CorrelationThreshold returns the smallest threshold producing at most
// maxEdges edges — how the paper picks thresholds targeting a graph
// density.
func CorrelationThreshold(m *ExpressionMatrix, method CorrelationMethod, maxEdges int) float64 {
	return microarray.ThresholdForEdgeCount(m, method, maxEdges)
}
