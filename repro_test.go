package repro

import (
	"testing"

	"repro/internal/graph"
)

// overlapGraph builds the quickstart structure: two overlapping modules.
func overlapGraph() *Graph {
	g := NewGraph(9)
	graph.PlantClique(g, []int{0, 1, 2, 3, 4})
	graph.PlantClique(g, []int{3, 4, 5, 6})
	g.AddEdge(6, 7)
	g.AddEdge(7, 8)
	return g
}

func TestFacadeMaxClique(t *testing.T) {
	g := overlapGraph()
	c := MaxClique(g)
	if len(c) != 5 {
		t.Fatalf("MaxClique = %v", c)
	}
	if MaxCliqueSize(g) != 5 {
		t.Fatal("MaxCliqueSize mismatch")
	}
}

func TestFacadeEnumerate(t *testing.T) {
	g := overlapGraph()
	var sizes []int
	n, err := EnumerateMaximalCliques(g, 3, 0, func(c Clique) {
		sizes = append(sizes, len(c))
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || len(sizes) != 2 {
		t.Fatalf("n=%d sizes=%v", n, sizes)
	}
	if sizes[0] != 4 || sizes[1] != 5 {
		t.Errorf("sizes = %v, want [4 5] (non-decreasing)", sizes)
	}
	// Nil visitor counts only.
	n2, err := EnumerateMaximalCliques(g, 3, 0, nil)
	if err != nil || n2 != 2 {
		t.Errorf("count-only: n=%d err=%v", n2, err)
	}
}

func TestFacadeEnumerateParallel(t *testing.T) {
	g := overlapGraph()
	n, err := EnumerateParallel(g, 2, 3, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("parallel count = %d", n)
	}
}

func TestFacadeParacliques(t *testing.T) {
	g := overlapGraph()
	ps := Paracliques(g, 0.9)
	if len(ps) == 0 {
		t.Fatal("no paracliques")
	}
	if ps[0].CoreSize != 5 {
		t.Errorf("first core = %d", ps[0].CoreSize)
	}
}
