package repro_test

import (
	"context"
	"os"
	"testing"

	"repro"
	"repro/internal/dist"
)

// TestMain lets this test binary serve as an exec/pipe worker for the
// distributed facade tests: the coordinator's default transport
// re-executes the running binary, and the environment marker routes the
// child into the worker loop before any test runs.
func TestMain(m *testing.M) {
	if dist.WorkerEnabled() {
		dist.WorkerMain()
	}
	os.Exit(m.Run())
}

// TestDistributedFacadeParity: WithDistributed plugs into the one
// Enumerator API and its stream matches the sequential backend exactly,
// lower-bound filtering included, with the run visible in Stats.
func TestDistributedFacadeParity(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	g := testGraph(3, 60, 0.15)
	for _, lo := range []int{3, 5} {
		want := stream(t, repro.NewEnumerator(repro.WithBounds(lo, 0)), g)
		if len(want) == 0 {
			t.Fatalf("lo=%d: no cliques from the reference backend", lo)
		}
		var st repro.Stats
		e := repro.NewEnumerator(
			repro.WithBounds(lo, 0),
			repro.WithDistributed(2, t.TempDir(), repro.DistShardBytes(512)),
			repro.WithStats(&st),
		)
		got := stream(t, e, g)
		if len(got) != len(want) {
			t.Fatalf("lo=%d: distributed delivered %d cliques, want %d", lo, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("lo=%d: stream diverges at %d: got {%s}, want {%s}", lo, i, got[i], want[i])
			}
		}
		if st.Backend != "distributed" {
			t.Errorf("Stats.Backend = %q, want distributed", st.Backend)
		}
		if st.MaximalCliques != int64(len(want)) {
			t.Errorf("Stats.MaximalCliques = %d, want %d", st.MaximalCliques, len(want))
		}
		if st.DistWorkers != 2 {
			t.Errorf("Stats.DistWorkers = %d, want 2", st.DistWorkers)
		}
		if st.DistWorkerDeaths != 0 || st.DistReleases != 0 {
			t.Errorf("fault-free run reported deaths=%d releases=%d",
				st.DistWorkerDeaths, st.DistReleases)
		}
		if st.SpillBytesWritten == 0 || st.SpillBytesRead == 0 {
			t.Errorf("spill I/O not accounted: written=%d read=%d",
				st.SpillBytesWritten, st.SpillBytesRead)
		}
		// The per-level ledger must sum to the delivered count, like
		// every other backend.
		var sum int64
		for _, ls := range st.Levels {
			sum += ls.Maximal
		}
		if sum != st.MaximalCliques {
			t.Errorf("sum(Levels[].Maximal) = %d, want %d", sum, st.MaximalCliques)
		}
	}
}

// TestDistributedFacadeConfigErrors: the validation matrix reaches the
// facade — incompatible option combinations are run-time errors, not
// silent misconfiguration.
func TestDistributedFacadeConfigErrors(t *testing.T) {
	g := testGraph(3, 30, 0.1)
	for _, c := range []struct {
		name string
		opts []repro.Option
	}{
		{"with in-process workers", []repro.Option{
			repro.WithDistributed(2, t.TempDir()), repro.WithWorkers(4)}},
		{"with memory budget", []repro.Option{
			repro.WithDistributed(2, t.TempDir()), repro.WithMemoryBudget(1 << 20)}},
		{"with resume", []repro.Option{
			repro.WithDistributed(2, t.TempDir()), repro.WithResume(t.TempDir())}},
	} {
		t.Run(c.name, func(t *testing.T) {
			if _, err := repro.NewEnumerator(c.opts...).Run(context.Background(), g, nil); err == nil {
				t.Fatal("incompatible distributed config accepted")
			}
		})
	}
}
