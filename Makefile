GO ?= go

.PHONY: all build fmt fmt-fix vet test race bench examples ci

all: build

build:
	$(GO) build ./...

# Fails if any file needs reformatting (CI gate); use fmt-fix to apply.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt-fix:
	gofmt -w .

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detect the concurrency-heavy packages (full -race ./... is run
# in CI nightly-style via `make race-all` if ever needed).
race:
	$(GO) test -race ./internal/parallel ./internal/sched ./internal/core ./internal/kclique ./internal/bitset

race-all:
	$(GO) test -race ./...

# Short benchmark sweep: the streaming-vs-barrier comparison plus the
# paper-table regenerators, kept brief for CI.
bench:
	$(GO) test -run xxx -bench 'EnumerateStreaming|EnumerateBarrier|SeedFromK' -benchtime 5x .

# Keep the migrated examples and the documented API snippets honest:
# vet the example programs and run every doctest.
examples:
	$(GO) vet ./examples/...
	$(GO) test -run Example ./...

check: fmt vet test

ci: fmt vet build test race bench examples
