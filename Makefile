GO ?= go

.PHONY: all build fmt fmt-fix vet lint lint-audit lint-vet test race race-repr bench bench-all bench-check bench-json bench-ooc-json bench-hybrid-json dist-parity smoke-resume smoke-spillover smoke-cliqued smoke-dist examples ci

all: build

build:
	$(GO) build ./...

# Fails if any file needs reformatting (CI gate); use fmt-fix to apply.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt-fix:
	gofmt -w .

vet:
	$(GO) vet ./...

# The repo's own invariant suite (internal/analysis via cmd/repolint):
# memory-budget pairing, cancellation observation, hot-path allocation,
# cleanup-error propagation, graph freeze/row lifecycle.  Tests are
# analyzed too; exits nonzero on any finding.
lint:
	$(GO) run ./cmd/repolint ./...

# Inventory of every //nolint suppression with its justification; fails
# when any suppression lacks a reason or names an unknown analyzer
# (a silent hole in the suite — stale or a typo).
lint-audit:
	$(GO) run ./cmd/repolint -audit ./...

# The incremental driver: repolint speaks the vet unitchecker protocol,
# so `go vet -vettool` runs it off the go build cache — a second
# invocation re-analyzes only what changed, facts included.  The tool
# must live at a stable path (the vet result cache keys on it), hence
# bin/repolint rather than a temp file.  The wall time is printed so CI
# logs show the incremental win.
lint-vet:
	@$(GO) build -o bin/repolint ./cmd/repolint || exit 1; \
	start=$$(date +%s%3N); \
	$(GO) vet -vettool=$(CURDIR)/bin/repolint ./... || exit 1; \
	end=$$(date +%s%3N); \
	echo "lint-vet wall time: $$((end - start)) ms"

test:
	$(GO) test ./...

# Race-detect the concurrency-heavy packages (full -race ./... is run
# in CI nightly-style via `make race-all` if ever needed), plus the
# cross-representation parity tests (pooled scratch bitsets inside the
# CSR/WAH row readers are shared across worker goroutines).  The ooc
# package joins level shards on a worker pool with an in-order release
# sequencer, so it races level state across goroutines too.  The dist
# package races the lease table, the sequencer release path, and the
# coordinator's dispatcher/pump goroutines.
race:
	$(GO) test -race ./internal/parallel ./internal/sched ./internal/core ./internal/kclique ./internal/bitset ./internal/ooc ./internal/hybrid ./internal/membudget ./internal/service ./internal/dist
	$(GO) test -race -run 'Governor' .

race-repr:
	$(GO) test -race -run 'Representation' .

race-all:
	$(GO) test -race ./...

# Short benchmark sweep: the streaming-vs-barrier comparison, the
# representation trade-off, and the paper-table regenerators, kept brief
# for CI.
bench:
	$(GO) test -run xxx -bench 'EnumerateStreaming|EnumerateBarrier|SeedFromK|Representations' -benchtime 5x .

# The unified benchmark trajectory: kernel microbenchmarks plus the
# representation / out-of-core / hybrid enumeration scenarios, appended
# as one history entry to the committed BENCH_all.json.  Run it when a
# perf-relevant change lands and commit the new entry — the file is the
# repo's own perf record.
bench-all:
	$(GO) run ./cmd/benchall -out BENCH_all.json

# The regression gate over that record: compares the last two entries of
# BENCH_all.json per scenario and fails on a >10% slowdown.  For an
# intentional regression (a correctness fix that costs speed), set
# BENCH_ALLOW_REGRESSION=<short reason> — the check then reports the
# regressions, prints the reason into the log, and exits zero.
bench-check:
	$(GO) run ./cmd/benchall -check -out BENCH_all.json

# DEPRECATED: superseded by bench-all — BENCH_all.json carries the same
# representation scenarios in the unified trajectory.  Kept one release
# for dashboards pinned to BENCH_repr.json; will be removed.
bench-json:
	$(GO) run ./cmd/benchrepr -out BENCH_repr.json

# DEPRECATED: superseded by bench-all (see bench-json).  Kept one
# release for dashboards pinned to BENCH_ooc.json; will be removed.
bench-ooc-json:
	$(GO) run ./cmd/benchooc -out BENCH_ooc.json

# DEPRECATED: superseded by bench-all (see bench-json).  Kept one
# release for dashboards pinned to BENCH_hybrid.json; will be removed.
bench-hybrid-json:
	$(GO) run ./cmd/benchhybrid -out BENCH_hybrid.json

# Resume-after-kill smoke test: checkpoint, kill by timeout, resume,
# reconcile clique counts against an uninterrupted run.
smoke-resume:
	sh scripts/smoke_resume.sh

# Adaptive-spillover smoke test: a budget sized to trip the governor
# mid-run must spill, continue out-of-core, and print the
# byte-identical clique stream of the unconstrained in-core run.
smoke-spillover:
	sh scripts/smoke_spillover.sh

# Distributed stream-parity acceptance matrix: coordinator + N exec/pipe
# workers for N in {1,2,4}, raw and compressed shards, must emit the
# sequential backend's stream byte-for-byte — plus the kill-recovery
# test (injected worker death mid-level, shard re-leased).
dist-parity:
	$(GO) test -run 'TestDistStreamParityMatrix|TestDistKillWorkerRecovery' -count=1 -v ./internal/dist

# Distributed-enumeration smoke test: coordinator with 3 exec workers on
# the Table-1 graph, SIGKILL one worker mid-level from outside, require
# the stream byte-identical to the sequential reference and the run
# report to show the re-leased shard.
smoke-dist:
	sh scripts/smoke_dist.sh

# Query-service smoke test: boot cliqued, load a graph over HTTP, pin
# stream/cliquer byte parity and the cached repeat, kill a client
# mid-stream, and require the governor back at baseline.
smoke-cliqued:
	sh scripts/smoke_cliqued.sh

# Keep the migrated examples and the documented API snippets honest:
# vet the example programs and run every doctest.
examples:
	$(GO) vet ./examples/...
	$(GO) test -run Example ./...

check: fmt vet lint test

ci: fmt vet lint lint-audit build test race race-repr bench bench-check examples smoke-resume smoke-spillover smoke-cliqued smoke-dist dist-parity
