package repro_test

// BenchmarkRepresentations measures the representation trade-off on a
// sparse and a dense synthetic graph: enumeration time per backend with
// the peak adjacency bytes attached as a custom metric.  `make bench`
// runs a short sweep; `make bench-json` (cmd/benchrepr) writes the
// machine-readable BENCH_repr.json trajectory artifact.

import (
	"context"
	"fmt"
	"testing"

	"repro"
)

func benchScenario(b *testing.B, name string, n, adds int, seed int64) {
	for _, rep := range []repro.Representation{repro.Dense, repro.CSR, repro.Compressed} {
		g := buildRepGraph(b, rep, n, adds, seed)
		b.Run(fmt.Sprintf("%s/%v", name, rep), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := repro.NewEnumerator(repro.WithBounds(3, 0)).
					Run(context.Background(), g, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(g.Bytes()), "adj-bytes")
		})
	}
}

func BenchmarkRepresentations(b *testing.B) {
	// Sparse: the genome-scale shape (average degree ~16 here, scaled
	// down so the dense variant stays benchable).
	benchScenario(b, "sparse-n4000-deg16", 4000, 4000*8, 21)
	// Dense-ish: the paper's microarray-graph density regime.
	benchScenario(b, "dense-n700", 700, 700*45, 22)
}
