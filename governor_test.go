package repro_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro"
	"repro/internal/membudget"
)

// TestConcurrentRunsSharedGovernor is the multi-tenancy acceptance
// test: many Enumerator.Runs race on one parent Governor, each inside
// its own Reservation, exactly as the query service admits them.  Under
// -race this must hold:
//
//   - the parent's peak never exceeds the budget (reservations are the
//     admission bound, and every run charges within its reservation);
//   - each run's own peak stays within what it reserved;
//   - when everything finishes, the parent is back to zero — no
//     residual charges, no leaked reservations.
func TestConcurrentRunsSharedGovernor(t *testing.T) {
	g := testGraph(3, 60, 0.15)

	// Size one tenant's reservation from a solo metered run.
	solo := membudget.New(0)
	if _, err := repro.NewEnumerator(repro.WithGovernor(solo)).Run(
		context.Background(), g, repro.ReporterFunc(func(repro.Clique) {})); err != nil {
		t.Fatal(err)
	}
	perRun := solo.Peak() + solo.Peak()/4 // solo peak + slack for run-to-run jitter
	if perRun == 0 {
		t.Fatal("solo run metered zero bytes; the test would assert nothing")
	}

	const tenants = 6
	budget := perRun * 3 // only 3 of 6 fit at once: admission must gate
	parent := membudget.New(budget)

	var wg sync.WaitGroup
	errs := make([]error, tenants)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Retry admission until headroom appears, as the service's
			// bounded queue does.
			var res *membudget.Reservation
			for {
				var err error
				if res, err = parent.Reserve(perRun); err == nil {
					break
				} else if !errors.Is(err, membudget.ErrNoHeadroom) {
					errs[i] = err
					return
				}
			}
			child := res.Governor()
			_, err := repro.NewEnumerator(repro.WithGovernor(child)).Run(
				context.Background(), g, repro.ReporterFunc(func(repro.Clique) {}))
			if err == nil && child.Peak() > perRun {
				err = fmt.Errorf("tenant peak %d exceeds its reservation %d", child.Peak(), perRun)
			}
			if residual := res.Close(); residual != 0 && err == nil {
				err = fmt.Errorf("run left %d residual bytes charged", residual)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("tenant %d: %v", i, err)
		}
	}
	if peak := parent.Peak(); peak > budget {
		t.Errorf("parent peak %d exceeds budget %d", peak, budget)
	}
	if used := parent.Used(); used != 0 {
		t.Errorf("parent still has %d bytes charged after all runs closed", used)
	}
	if reserved := parent.Reserved(); reserved != 0 {
		t.Errorf("parent still has %d bytes reserved after all runs closed", reserved)
	}
	if parent.Peak() == 0 {
		t.Error("parent peak is zero; charges never reached the shared governor")
	}
}

// TestWithGovernorExclusivity: WithGovernor and WithMemoryBudget cannot
// be combined — the governor's own budget is the limit.
func TestWithGovernorExclusivity(t *testing.T) {
	g := testGraph(4, 30, 0.2)
	e := repro.NewEnumerator(
		repro.WithGovernor(membudget.New(1<<20)), repro.WithMemoryBudget(1<<20))
	if _, err := e.Run(context.Background(), g,
		repro.ReporterFunc(func(repro.Clique) {})); err == nil {
		t.Fatal("WithGovernor+WithMemoryBudget: want a config error")
	}
}

// TestWithGovernorEnforces: a run under an external governor whose
// budget cannot hold even the graph must abort with ErrMemoryBudget,
// and close back to zero.
func TestWithGovernorEnforces(t *testing.T) {
	g := testGraph(5, 60, 0.2)
	parent := membudget.New(g.Bytes() * 4)
	res, err := parent.Reserve(1) // far below the graph's own bytes
	if err != nil {
		t.Fatal(err)
	}
	_, err = repro.NewEnumerator(repro.WithGovernor(res.Governor())).Run(
		context.Background(), g, repro.ReporterFunc(func(repro.Clique) {}))
	if !errors.Is(err, repro.ErrMemoryBudget) {
		t.Fatalf("error = %v, want ErrMemoryBudget", err)
	}
	res.Close()
	if parent.Used() != 0 || parent.Reserved() != 0 {
		t.Fatalf("parent not at baseline after aborted run: used=%d reserved=%d",
			parent.Used(), parent.Reserved())
	}
}
