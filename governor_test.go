package repro_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro"
	"repro/internal/membudget"
)

// TestConcurrentRunsSharedGovernor is the multi-tenancy acceptance
// test: many Enumerator.Runs race on one parent Governor, each inside
// its own Reservation, exactly as the query service admits them.  Under
// -race this must hold:
//
//   - the parent's peak never exceeds the budget (reservations are the
//     admission bound, and every run charges within its reservation);
//   - each run's own peak stays within what it reserved;
//   - when everything finishes, the parent is back to zero — no
//     residual charges, no leaked reservations.
func TestConcurrentRunsSharedGovernor(t *testing.T) {
	g := testGraph(3, 60, 0.15)

	// Size one tenant's reservation from a solo metered run.
	solo := membudget.New(0)
	if _, err := repro.NewEnumerator(repro.WithGovernor(solo)).Run(
		context.Background(), g, repro.ReporterFunc(func(repro.Clique) {})); err != nil {
		t.Fatal(err)
	}
	perRun := solo.Peak() + solo.Peak()/4 // solo peak + slack for run-to-run jitter
	if perRun == 0 {
		t.Fatal("solo run metered zero bytes; the test would assert nothing")
	}

	const tenants = 6
	budget := perRun * 3 // only 3 of 6 fit at once: admission must gate
	parent := membudget.New(budget)

	var wg sync.WaitGroup
	errs := make([]error, tenants)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Retry admission until headroom appears, as the service's
			// bounded queue does.
			var res *membudget.Reservation
			for {
				var err error
				if res, err = parent.Reserve(perRun); err == nil {
					break
				} else if !errors.Is(err, membudget.ErrNoHeadroom) {
					errs[i] = err
					return
				}
			}
			child := res.Governor()
			_, err := repro.NewEnumerator(repro.WithGovernor(child)).Run(
				context.Background(), g, repro.ReporterFunc(func(repro.Clique) {}))
			if err == nil && child.Peak() > perRun {
				err = fmt.Errorf("tenant peak %d exceeds its reservation %d", child.Peak(), perRun)
			}
			if residual := res.Close(); residual != 0 && err == nil {
				err = fmt.Errorf("run left %d residual bytes charged", residual)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("tenant %d: %v", i, err)
		}
	}
	if peak := parent.Peak(); peak > budget {
		t.Errorf("parent peak %d exceeds budget %d", peak, budget)
	}
	if used := parent.Used(); used != 0 {
		t.Errorf("parent still has %d bytes charged after all runs closed", used)
	}
	if reserved := parent.Reserved(); reserved != 0 {
		t.Errorf("parent still has %d bytes reserved after all runs closed", reserved)
	}
	if parent.Peak() == 0 {
		t.Error("parent peak is zero; charges never reached the shared governor")
	}
}

// TestWithGovernorExclusivity: WithGovernor and WithMemoryBudget cannot
// be combined — the governor's own budget is the limit.
func TestWithGovernorExclusivity(t *testing.T) {
	g := testGraph(4, 30, 0.2)
	e := repro.NewEnumerator(
		repro.WithGovernor(membudget.New(1<<20)), repro.WithMemoryBudget(1<<20))
	if _, err := e.Run(context.Background(), g,
		repro.ReporterFunc(func(repro.Clique) {})); err == nil {
		t.Fatal("WithGovernor+WithMemoryBudget: want a config error")
	}
}

// TestWithGraphCharged pins the single-counting law behind the query
// service's registry pins: a run told its graph is already resident
// must not re-charge the adjacency bytes (its peak drops by exactly
// g.Bytes()), a shared parent therefore sees each pinned graph once —
// never once more per active run — and a requested representation
// conversion is still charged, because the copy is residency the pin
// does not cover.
func TestWithGraphCharged(t *testing.T) {
	g := testGraph(17, 60, 0.15)

	peak := func(opts ...repro.Option) int64 {
		gov := membudget.New(0)
		opts = append(opts, repro.WithGovernor(gov))
		if _, err := repro.NewEnumerator(opts...).Run(
			context.Background(), g, repro.ReporterFunc(func(repro.Clique) {})); err != nil {
			t.Fatal(err)
		}
		return gov.Peak()
	}
	base := peak()
	pinned := peak(repro.WithGraphCharged())
	if base-pinned != g.Bytes() {
		t.Fatalf("entry charge not skipped: base peak %d, pinned peak %d, graph %d bytes",
			base, pinned, g.Bytes())
	}

	// A conversion is new residency either way: with the input graph
	// pinned or not, the converted copy is what gets charged, so the two
	// runs meter identically.
	conv := peak(repro.WithGraphRepresentation(repro.CSR))
	convPinned := peak(repro.WithGraphCharged(), repro.WithGraphRepresentation(repro.CSR))
	if conv != convPinned {
		t.Fatalf("converted-copy charge diverges: %d without pin, %d with", conv, convPinned)
	}

	// The service shape end to end: pin on the parent, reserve, run the
	// child with WithGraphCharged.  The parent's peak must be the pin
	// plus the run's working set — not the pin plus the graph again.
	parent := membudget.New(0)
	parent.Charge(g.Bytes()) // the registry pin
	res, err := parent.Reserve(g.Bytes() + 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	child := res.Governor()
	if _, err := repro.NewEnumerator(repro.WithGovernor(child), repro.WithGraphCharged()).Run(
		context.Background(), g, repro.ReporterFunc(func(repro.Clique) {})); err != nil {
		t.Fatal(err)
	}
	if residual := res.Close(); residual != 0 {
		t.Fatalf("run left %d residual bytes", residual)
	}
	if parent.Used() != g.Bytes() {
		t.Fatalf("parent used %d after run, want the pin alone (%d)", parent.Used(), g.Bytes())
	}
	if parent.Peak() != g.Bytes()+child.Peak() {
		t.Fatalf("parent peak %d = pin %d + child peak %d does not hold: graph bytes double-counted",
			parent.Peak(), g.Bytes(), child.Peak())
	}
	parent.Release(g.Bytes())
}

// TestWithGovernorEnforces: a run under an external governor whose
// budget cannot hold even the graph must abort with ErrMemoryBudget,
// and close back to zero.
func TestWithGovernorEnforces(t *testing.T) {
	g := testGraph(5, 60, 0.2)
	parent := membudget.New(g.Bytes() * 4)
	res, err := parent.Reserve(1) // far below the graph's own bytes
	if err != nil {
		t.Fatal(err)
	}
	_, err = repro.NewEnumerator(repro.WithGovernor(res.Governor())).Run(
		context.Background(), g, repro.ReporterFunc(func(repro.Clique) {}))
	if !errors.Is(err, repro.ErrMemoryBudget) {
		t.Fatalf("error = %v, want ErrMemoryBudget", err)
	}
	res.Close()
	if parent.Used() != 0 || parent.Reserved() != 0 {
		t.Fatalf("parent not at baseline after aborted run: used=%d reserved=%d",
			parent.Used(), parent.Reserved())
	}
}
