package repro_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

// TestFingerprintMatchesOOCManifest cross-checks the promoted
// repro.Fingerprint against the identity the out-of-core checkpoint
// manifest stores: kill a checkpointed run mid-way, read graph_hash out
// of ooc-manifest.json, and require the facade to compute the same
// value.  This is the invariant that lets the query service and the
// checkpoint layer agree on what "the same graph" means.
func TestFingerprintMatchesOOCManifest(t *testing.T) {
	g := testGraph(7, 60, 0.2)
	fp := repro.Fingerprint(g)
	if len(fp) != 16 {
		t.Fatalf("fingerprint %q: want 16 hex digits", fp)
	}
	if fp != repro.Fingerprint(g) {
		t.Fatal("fingerprint is not deterministic")
	}

	dir := t.TempDir()
	e := repro.NewEnumerator(repro.WithOutOfCore(dir, 0, repro.OOCCheckpoint()))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	seen := 0
	_, err := e.Run(ctx, g, repro.ReporterFunc(func(repro.Clique) {
		if seen++; seen == 3 {
			cancel()
		}
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run error = %v, want context.Canceled", err)
	}

	data, err := os.ReadFile(filepath.Join(dir, "ooc-manifest.json"))
	if err != nil {
		t.Fatalf("no checkpoint manifest after the kill: %v", err)
	}
	var m struct {
		GraphHash string `json:"graph_hash"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.GraphHash != fp {
		t.Fatalf("manifest graph_hash %q != repro.Fingerprint %q", m.GraphHash, fp)
	}
}

// TestFingerprintDistinguishesGraphs: different graphs, different
// fingerprints (probabilistically certain for FNV at this scale, and a
// regression guard against hashing only the header).
func TestFingerprintDistinguishesGraphs(t *testing.T) {
	a := testGraph(1, 40, 0.2)
	b := testGraph(2, 40, 0.2)
	if repro.Fingerprint(a) == repro.Fingerprint(b) {
		t.Fatal("distinct graphs share a fingerprint")
	}
}

// TestReadGraphAutoDetect exercises the io.Reader ingestion path: the
// same graph serialized as an edge list and as DIMACS must auto-detect
// to equal graphs with equal fingerprints, and explicit formats must
// refuse nothing they accept under auto.
func TestReadGraphAutoDetect(t *testing.T) {
	g := testGraph(11, 40, 0.2)

	var el, dim bytes.Buffer
	if err := repro.WriteEdgeList(&el, g); err != nil {
		t.Fatal(err)
	}
	if err := repro.WriteDIMACS(&dim, g); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		data   string
		format repro.GraphFormat
	}{
		{"edgelist-auto", el.String(), repro.FormatAuto},
		{"edgelist-explicit", el.String(), repro.FormatEdgeList},
		{"dimacs-auto", dim.String(), repro.FormatAuto},
		{"dimacs-explicit", dim.String(), repro.FormatDIMACS},
	}
	want := repro.Fingerprint(g)
	for _, c := range cases {
		got, err := repro.ReadGraph(strings.NewReader(c.data), c.format, repro.Auto)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if repro.Fingerprint(got) != want {
			t.Fatalf("%s: fingerprint %s, want %s", c.name, repro.Fingerprint(got), want)
		}
	}

	if _, err := repro.ReadGraph(strings.NewReader(""), repro.FormatAuto, repro.Auto); err == nil {
		t.Fatal("empty input: want an error")
	}
	if _, err := repro.ParseGraphFormat("yaml"); err == nil {
		t.Fatal("ParseGraphFormat(yaml): want an error")
	}
}
