package repro_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro"
	"repro/internal/graph"
)

// testGraph builds a randomized graph with enough planted structure to
// produce maximal cliques across several sizes.
func testGraph(seed int64, n int, p float64) *repro.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomGNP(rng, n, p)
	// Plant overlapping modules so every backend has multi-level work.
	repro.PlantClique(g, []int{0, 1, 2, 3, 4, 5, 6})
	repro.PlantClique(g, []int{4, 5, 6, 7, 8})
	repro.PlantClique(g, []int{n - 5, n - 4, n - 3, n - 2, n - 1})
	return g
}

// stream runs e over g and returns the emitted cliques as ordered keys.
func stream(t *testing.T, e *repro.Enumerator, g *repro.Graph) []string {
	t.Helper()
	var keys []string
	n, err := e.Run(context.Background(), g, repro.ReporterFunc(func(c repro.Clique) {
		keys = append(keys, c.Key())
	}))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if int(n) != len(keys) {
		t.Fatalf("Run reported %d cliques, delivered %d", n, len(keys))
	}
	return keys
}

// TestBackendParity asserts the facade's acceptance property: the
// sequential, parallel, and out-of-core backends produce identical
// ordered clique streams through the one Enumerator API.
func TestBackendParity(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		g := testGraph(seed, 80, 0.15)
		backends := []struct {
			name string
			opts []repro.Option
		}{
			{"sequential", nil},
			{"parallel-affinity", []repro.Option{repro.WithWorkers(3), repro.WithStrategy(repro.Affinity)}},
			{"parallel-contiguous", []repro.Option{repro.WithWorkers(2), repro.WithStrategy(repro.Contiguous)}},
			{"barrier-contiguous", []repro.Option{repro.WithWorkers(3), repro.WithStrategy(repro.Contiguous), repro.WithBarrier()}},
			{"out-of-core", []repro.Option{repro.WithOutOfCore(t.TempDir(), 0)}},
			{"out-of-core-parallel", []repro.Option{repro.WithOutOfCore(t.TempDir(), 0,
				repro.OOCWorkers(4))}},
			{"out-of-core-compressed", []repro.Option{repro.WithOutOfCore(t.TempDir(), 0,
				repro.OOCCompress())}},
			{"out-of-core-parallel-compressed", []repro.Option{repro.WithOutOfCore(t.TempDir(), 0,
				repro.OOCWorkers(3), repro.OOCCompress())}},
			{"low-memory", []repro.Option{repro.WithLowMemory()}},
			{"compressed", []repro.Option{repro.WithCompressedBitmaps()}},
		}
		want := stream(t, repro.NewEnumerator(append(backends[0].opts, repro.WithBounds(3, 0))...), g)
		if len(want) == 0 {
			t.Fatalf("seed %d: no cliques from the reference backend", seed)
		}
		for _, b := range backends[1:] {
			got := stream(t, repro.NewEnumerator(append(b.opts, repro.WithBounds(3, 0))...), g)
			if len(got) != len(want) {
				t.Fatalf("seed %d: %s delivered %d cliques, want %d", seed, b.name, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d: %s stream diverges at %d: got {%s}, want {%s}",
						seed, b.name, i, got[i], want[i])
				}
			}
		}
	}
}

// TestCliquesIteratorYieldsStableCliques retains every yielded clique and
// checks them after the run: Cliques must yield owned copies, unlike the
// borrowed Reporter emissions.
func TestCliquesIteratorYieldsStableCliques(t *testing.T) {
	g := testGraph(7, 60, 0.15)
	e := repro.NewEnumerator(repro.WithBounds(3, 0))
	var retained []repro.Clique
	for c, err := range e.Cliques(context.Background(), g) {
		if err != nil {
			t.Fatalf("Cliques: %v", err)
		}
		retained = append(retained, c) // deliberately no copy
	}
	want := stream(t, e, g)
	if len(retained) != len(want) {
		t.Fatalf("iterator yielded %d cliques, Run delivered %d", len(retained), len(want))
	}
	for i, c := range retained {
		if c.Key() != want[i] {
			t.Errorf("retained clique %d corrupted: got {%s}, want {%s}", i, c.Key(), want[i])
		}
		if !g.IsMaximalClique(c) {
			t.Errorf("retained clique %d (%v) is not a maximal clique", i, c)
		}
	}
}

// TestCliqueCloneSurvivesReporterReuse documents the Reporter borrow rule
// and its Clone escape hatch.
func TestCliqueCloneSurvivesReporterReuse(t *testing.T) {
	g := testGraph(9, 50, 0.15)
	var borrowed, cloned []repro.Clique
	_, err := repro.NewEnumerator(repro.WithBounds(3, 0)).Run(context.Background(), g,
		repro.ReporterFunc(func(c repro.Clique) {
			borrowed = append(borrowed, c)
			cloned = append(cloned, c.Clone())
		}))
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cloned {
		if !g.IsMaximalClique(c) {
			t.Fatalf("cloned clique %d (%v) is not maximal: Clone is broken", i, c)
		}
	}
	// The borrowed slices share backing arrays; at least one should have
	// been overwritten by later emissions (that is the point of Clone).
	damaged := 0
	for _, c := range borrowed {
		if !c.Canonical() || !g.IsMaximalClique(c) {
			damaged++
		}
	}
	if damaged == 0 {
		t.Log("no borrowed clique was overwritten on this graph (reuse is allowed, not required)")
	}
}

// waitGoroutines polls until the goroutine count drops back to at most
// base, tolerating the runtime's lazy reaping.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d now vs %d before the run", runtime.NumGoroutine(), base)
}

// TestCancellationMidRun cancels each backend mid-enumeration and checks
// it unwinds cleanly: ctx error surfaced, no goroutine leak, no leftover
// spill files, partial stats retained.
func TestCancellationMidRun(t *testing.T) {
	g := testGraph(3, 200, 0.25) // dense enough for a multi-level run
	spill := t.TempDir()
	backends := []struct {
		name string
		opts []repro.Option
	}{
		{"sequential", nil},
		{"parallel", []repro.Option{repro.WithWorkers(4), repro.WithStrategy(repro.Affinity)}},
		{"barrier", []repro.Option{repro.WithWorkers(4), repro.WithBarrier()}},
		{"out-of-core", []repro.Option{repro.WithOutOfCore(spill, 0)}},
	}
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			base := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var st repro.Stats
			var emitted int64
			opts := append(append([]repro.Option{}, b.opts...),
				repro.WithBounds(3, 0), repro.WithStats(&st))
			n, err := repro.NewEnumerator(opts...).Run(ctx, g,
				repro.ReporterFunc(func(c repro.Clique) {
					emitted++
					if emitted == 5 {
						cancel() // cancel from inside the run, mid-level
					}
				}))
			if err == nil {
				t.Fatal("run completed despite cancellation")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("error %v does not wrap context.Canceled", err)
			}
			if emitted < 5 {
				t.Fatalf("canceled after %d emissions, want >= 5", emitted)
			}
			if n > emitted {
				t.Errorf("reported count %d exceeds emissions seen %d", n, emitted)
			}
			if st.Elapsed <= 0 {
				t.Error("partial stats missing Elapsed")
			}
			waitGoroutines(t, base)
		})
	}
	// The out-of-core run's spill files must be gone after the abort.
	entries, err := os.ReadDir(spill)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("leftover spill entry after cancellation: %s", filepath.Join(spill, e.Name()))
	}
}

// TestCliquesEarlyBreakCancelsRun breaks out of the iterator and checks
// the producer goroutine unwinds (and spill files vanish).
func TestCliquesEarlyBreakCancelsRun(t *testing.T) {
	g := testGraph(5, 200, 0.25)
	for _, b := range []struct {
		name string
		opts []repro.Option
	}{
		{"sequential", nil},
		{"parallel", []repro.Option{repro.WithWorkers(3)}},
		{"out-of-core", []repro.Option{repro.WithOutOfCore(t.TempDir(), 0)}},
	} {
		t.Run(b.name, func(t *testing.T) {
			base := runtime.NumGoroutine()
			e := repro.NewEnumerator(append(b.opts, repro.WithBounds(3, 0))...)
			seen := 0
			for c, err := range e.Cliques(context.Background(), g) {
				if err != nil {
					t.Fatalf("unexpected iterator error: %v", err)
				}
				_ = c
				if seen++; seen == 3 {
					break
				}
			}
			if seen != 3 {
				t.Fatalf("saw %d cliques before break, want 3", seen)
			}
			waitGoroutines(t, base)
		})
	}
}

// TestCliquesIteratorSurfacesErrors: a canceled parent context arrives as
// the iterator's final yield.
func TestCliquesIteratorSurfacesErrors(t *testing.T) {
	g := testGraph(11, 200, 0.25)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var finalErr error
	n := 0
	for c, err := range repro.NewEnumerator(repro.WithBounds(3, 0)).Cliques(ctx, g) {
		if err != nil {
			finalErr = err
			break
		}
		_ = c
		if n++; n == 2 {
			cancel()
		}
	}
	if finalErr == nil {
		t.Fatal("iterator never surfaced the cancellation error")
	}
	if !errors.Is(finalErr, context.Canceled) {
		t.Fatalf("iterator error %v does not wrap context.Canceled", finalErr)
	}
}

// TestConfigErrors: invalid option combinations fail fast with a
// descriptive error, not mid-run.
func TestConfigErrors(t *testing.T) {
	g := repro.NewGraph(4)
	cases := []struct {
		name string
		opts []repro.Option
	}{
		{"inverted bounds", []repro.Option{repro.WithBounds(5, 3)}},
		{"zero lo", []repro.Option{repro.WithBounds(-1, 0)}},
		{"negative workers", []repro.Option{repro.WithWorkers(-2)}},
		{"ooc+report-small", []repro.Option{repro.WithOutOfCore(t.TempDir(), 0), repro.WithReportSmall()}},
		{"ooc+low-memory", []repro.Option{repro.WithOutOfCore(t.TempDir(), 0), repro.WithLowMemory()}},
		{"ooc+barrier", []repro.Option{repro.WithOutOfCore(t.TempDir(), 0), repro.WithWorkers(4), repro.WithBarrier()}},
		{"ooc-compress-without-dir", []repro.Option{repro.WithOutOfCore("", 0, repro.OOCCompress())}},
		{"parallel+report-small", []repro.Option{repro.WithWorkers(4), repro.WithReportSmall()}},
		{"barrier-without-workers", []repro.Option{repro.WithBarrier()}},
		{"negative-memory-budget", []repro.Option{repro.WithMemoryBudget(-1)}},
		{"spillover-without-dir", []repro.Option{repro.WithSpillover(""), repro.WithMemoryBudget(1 << 20)}},
		{"spillover-without-budget", []repro.Option{repro.WithSpillover(t.TempDir())}},
		{"resume+spillover", []repro.Option{repro.WithResume(t.TempDir()), repro.WithSpillover(t.TempDir()), repro.WithMemoryBudget(1 << 20)}},
		{"resume+memory-budget", []repro.Option{repro.WithResume(t.TempDir()), repro.WithMemoryBudget(1 << 20)}},
		{"hybrid+barrier", []repro.Option{repro.WithSpillover(t.TempDir()), repro.WithMemoryBudget(1 << 20),
			repro.WithWorkers(4), repro.WithBarrier()}},
		{"hybrid+checkpoint", []repro.Option{repro.WithOutOfCore(t.TempDir(), 0, repro.OOCCheckpoint()),
			repro.WithMemoryBudget(1 << 20)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := repro.NewEnumerator(c.opts...).Run(context.Background(), g, nil); err == nil {
				t.Fatal("want configuration error, got nil")
			}
			for range repro.NewEnumerator(c.opts...).Cliques(context.Background(), g) {
				// Must yield exactly one (nil, err) pair; reaching a
				// clique would be a bug on a config this broken.
				break
			}
		})
	}
}

// TestStatsAcrossBackends: WithStats is filled consistently by all
// backends, and the enumerator is reusable run to run.
func TestStatsAcrossBackends(t *testing.T) {
	g := testGraph(2, 70, 0.15)
	var want int64
	{
		var st repro.Stats
		e := repro.NewEnumerator(repro.WithBounds(3, 0), repro.WithStats(&st))
		if _, err := e.Run(context.Background(), g, nil); err != nil {
			t.Fatal(err)
		}
		want = st.MaximalCliques
		if want == 0 || st.Backend != "sequential" || len(st.Levels) == 0 || st.PeakBytes == 0 {
			t.Fatalf("sequential stats incomplete: %+v", st)
		}
		// Reuse the same enumerator: stats reset per run.
		if _, err := e.Run(context.Background(), g, nil); err != nil {
			t.Fatal(err)
		}
		if st.MaximalCliques != want {
			t.Fatalf("second run found %d cliques, first %d", st.MaximalCliques, want)
		}
	}
	{
		var st repro.Stats
		e := repro.NewEnumerator(repro.WithBounds(3, 0), repro.WithWorkers(3), repro.WithStats(&st))
		if _, err := e.Run(context.Background(), g, nil); err != nil {
			t.Fatal(err)
		}
		if st.Backend != "parallel" || st.MaximalCliques != want || len(st.WorkerBusy) != 3 {
			t.Fatalf("parallel stats incomplete: %+v", st)
		}
	}
	{
		var st repro.Stats
		e := repro.NewEnumerator(repro.WithBounds(3, 0),
			repro.WithOutOfCore(t.TempDir(), 0), repro.WithStats(&st))
		if _, err := e.Run(context.Background(), g, nil); err != nil {
			t.Fatal(err)
		}
		if st.Backend != "out-of-core" || st.MaximalCliques != want || st.SpillBytesWritten == 0 {
			t.Fatalf("out-of-core stats incomplete: %+v", st)
		}
	}
}

// TestOnLevelObserver: the per-level observer fires for every generation
// step on every backend (the facade form of cliquer -stats).
func TestOnLevelObserver(t *testing.T) {
	g := testGraph(6, 60, 0.15)
	for _, b := range []struct {
		name string
		opts []repro.Option
	}{
		{"sequential", nil},
		{"parallel", []repro.Option{repro.WithWorkers(2)}},
		{"out-of-core", []repro.Option{repro.WithOutOfCore(t.TempDir(), 0)}},
	} {
		t.Run(b.name, func(t *testing.T) {
			levels := 0
			var maximal int64
			opts := append(append([]repro.Option{}, b.opts...),
				repro.WithBounds(3, 0),
				repro.WithOnLevel(func(ls repro.LevelStats) {
					levels++
					maximal += ls.Maximal
				}))
			n, err := repro.NewEnumerator(opts...).Run(context.Background(), g, nil)
			if err != nil {
				t.Fatal(err)
			}
			if levels == 0 {
				t.Fatal("observer never fired")
			}
			// Level records cover the generation steps only; with lo=3
			// the in-core seed phase reports maximal 3-cliques outside
			// any level, so the level sum is a lower bound on the count.
			if maximal > n {
				t.Fatalf("levels account for %d maximal cliques, run delivered only %d", maximal, n)
			}
		})
	}
}

// TestOOCLevelMaximalRespectsLowerBound: with a lower bound above 3, the
// out-of-core backend's per-level Maximal must count only delivered
// cliques, so the level sum equals the run count (as in-core).
func TestOOCLevelMaximalRespectsLowerBound(t *testing.T) {
	g := testGraph(6, 60, 0.15)
	var st repro.Stats
	n, err := repro.NewEnumerator(
		repro.WithBounds(5, 0),
		repro.WithOutOfCore(t.TempDir(), 0),
		repro.WithStats(&st),
	).Run(context.Background(), g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no cliques of size >= 5; broaden the test graph")
	}
	var sum int64
	for _, ls := range st.Levels {
		sum += ls.Maximal
	}
	if sum != n {
		t.Fatalf("levels sum to %d maximal cliques, run delivered %d", sum, n)
	}
}

// TestDeprecatedWrappersMatchEnumerator pins the compatibility contract:
// the old free functions are thin wrappers over the new facade.
func TestDeprecatedWrappersMatchEnumerator(t *testing.T) {
	g := testGraph(8, 60, 0.15)
	var oldKeys []string
	n1, err := repro.EnumerateMaximalCliques(g, 3, 0, func(c repro.Clique) {
		oldKeys = append(oldKeys, c.Key())
	})
	if err != nil {
		t.Fatal(err)
	}
	newKeys := stream(t, repro.NewEnumerator(repro.WithBounds(3, 0)), g)
	if n1 != int64(len(newKeys)) {
		t.Fatalf("wrapper found %d cliques, enumerator %d", n1, len(newKeys))
	}
	for i := range newKeys {
		if oldKeys[i] != newKeys[i] {
			t.Fatalf("wrapper stream diverges at %d", i)
		}
	}
	n2, err := repro.EnumerateParallel(g, 3, 3, 0, nil)
	if err != nil || n2 != n1 {
		t.Fatalf("EnumerateParallel = %d, %v; want %d", n2, err, n1)
	}
	if ps := repro.Paracliques(g, 0.9); len(ps) == 0 {
		t.Fatal("Paracliques wrapper found nothing")
	}
}

// TestParacliquesComposesWithBounds: the facade's paraclique entry uses
// the enumerator's lower bound as the minimum seed size and honors
// cancellation.
func TestParacliquesComposesWithBounds(t *testing.T) {
	g := testGraph(4, 60, 0.1)
	ctx := context.Background()
	loose, err := repro.NewEnumerator().Paracliques(ctx, g, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := repro.NewEnumerator(repro.WithBounds(5, 0)).Paracliques(ctx, g, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(tight) > len(loose) {
		t.Fatalf("lo=5 found %d paracliques, lo=3 only %d", len(tight), len(loose))
	}
	for _, p := range tight {
		if p.CoreSize < 5 {
			t.Fatalf("paraclique core %d below the WithBounds lower bound 5", p.CoreSize)
		}
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := repro.NewEnumerator().Paracliques(canceled, g, 0.9); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Paracliques error = %v, want context.Canceled", err)
	}
}

// TestFacadeGraphIO round-trips both promoted interchange formats.
func TestFacadeGraphIO(t *testing.T) {
	g := testGraph(10, 30, 0.2)
	dir := t.TempDir()
	for _, f := range []struct {
		name  string
		write func(*os.File, *repro.Graph) error
		read  func(*os.File) (*repro.Graph, error)
	}{
		{"edgelist", func(w *os.File, g *repro.Graph) error { return repro.WriteEdgeList(w, g) },
			func(r *os.File) (*repro.Graph, error) { return repro.ReadEdgeList(r) }},
		{"dimacs", func(w *os.File, g *repro.Graph) error { return repro.WriteDIMACS(w, g) },
			func(r *os.File) (*repro.Graph, error) { return repro.ReadDIMACS(r) }},
	} {
		path := filepath.Join(dir, f.name)
		w, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.write(w, g); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := f.read(r)
		r.Close()
		if err != nil {
			t.Fatalf("%s: %v", f.name, err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("%s round-trip: %d/%d vertices, %d/%d edges",
				f.name, g2.N(), g.N(), g2.M(), g.M())
		}
	}
}

// TestExpressionPipeline drives the promoted microarray entry points into
// the enumerator — the paper's primary workflow through the facade only.
func TestExpressionPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	mat := repro.SynthesizeExpression(rng, repro.SyntheticConfig{
		Genes:      80,
		Conditions: 40,
		Modules:    []repro.ModuleSpec{{Genes: []int{0, 1, 2, 3, 4, 5}, Signal: 6}},
	})
	mat.Normalize()
	th := repro.CorrelationThreshold(mat, repro.SpearmanRank, 120)
	g := repro.CorrelationGraph(mat, repro.SpearmanRank, th)
	if g.N() != 80 {
		t.Fatalf("correlation graph has %d vertices", g.N())
	}
	found := false
	for c, err := range repro.NewEnumerator(repro.WithBounds(4, 0)).Cliques(context.Background(), g) {
		if err != nil {
			t.Fatal(err)
		}
		inModule := 0
		for _, v := range c {
			if v < 6 {
				inModule++
			}
		}
		if inModule >= 4 {
			found = true
		}
	}
	if !found {
		t.Fatal("planted co-expression module not recovered as a clique")
	}
}

// TestResumeAfterKill is the facade's checkpoint/resume acceptance
// property: a checkpointed out-of-core run killed mid-enumeration is
// continued by WithResume, the combined stream reproduces the
// uninterrupted run exactly, and the spill statistics merge across the
// checkpoint boundary.
func TestResumeAfterKill(t *testing.T) {
	g := testGraph(3, 120, 0.2)
	dir := t.TempDir()

	// Uninterrupted reference run (plain out-of-core, same encoding).
	var full repro.Stats
	want := stream(t, repro.NewEnumerator(repro.WithBounds(3, 0),
		repro.WithOutOfCore(t.TempDir(), 0, repro.OOCCompress()),
		repro.WithStats(&full)), g)
	if len(want) < 30 {
		t.Fatalf("only %d cliques; the kill point needs a longer run", len(want))
	}

	// Checkpointed run, killed from inside the reporter mid-level.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var killed []string
	_, err := repro.NewEnumerator(repro.WithBounds(3, 0),
		repro.WithOutOfCore(dir, 0, repro.OOCCompress(), repro.OOCCheckpoint()),
	).Run(ctx, g, repro.ReporterFunc(func(c repro.Clique) {
		killed = append(killed, c.Key())
		if len(killed) == len(want)/2 {
			cancel()
		}
	}))
	if err == nil {
		t.Fatal("checkpointed run completed despite the kill")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("kill error %v does not wrap context.Canceled", err)
	}
	for i, k := range killed {
		if k != want[i] {
			t.Fatalf("killed run diverged from the reference at %d", i)
		}
	}

	// Resume and finish.
	var st repro.Stats
	var resumed []string
	n, err := repro.NewEnumerator(repro.WithBounds(3, 0),
		repro.WithResume(dir), repro.WithStats(&st),
	).Run(context.Background(), g, repro.ReporterFunc(func(c repro.Clique) {
		resumed = append(resumed, c.Key())
	}))
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !st.Resumed {
		t.Error("Stats.Resumed not set on a resumed run")
	}
	if int(n) != len(resumed) || len(resumed) == 0 {
		t.Fatalf("resume delivered %d cliques, reported %d", len(resumed), n)
	}
	// The resumed stream re-runs the interrupted level from its start,
	// so it is exactly a contiguous suffix of the uninterrupted stream.
	off := len(want) - len(resumed)
	if off < 0 {
		t.Fatalf("resume delivered %d cliques, more than the full run's %d", len(resumed), len(want))
	}
	for i, k := range resumed {
		if k != want[off+i] {
			t.Fatalf("resumed stream diverges at %d: got {%s}, want {%s}", i, k, want[off+i])
		}
	}
	// Everything before the suffix was delivered (and checkpointed) by
	// the killed run.
	if off > len(killed) {
		t.Fatalf("resume starts at %d but the killed run only delivered %d cliques", off, len(killed))
	}
	// Cumulative spill accounting continues across the boundary: the
	// interrupted level's partial output was discarded and redone, so
	// the resumed run's final counters match the uninterrupted run's.
	if st.SpillBytesWritten != full.SpillBytesWritten ||
		st.SpillRawBytesWritten != full.SpillRawBytesWritten ||
		st.SpillBytesRead != full.SpillBytesRead {
		t.Errorf("merged spill stats diverge from the uninterrupted run:\nresumed %+v\nfull    %+v", st, full)
	}
	// The completed run retires its checkpoint.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Errorf("leftover checkpoint entry after the resumed run completed: %s", e.Name())
	}
}

func ExampleClique_Clone() {
	c := repro.Clique{2, 5, 9}
	d := c.Clone()
	c[0] = 99
	fmt.Println(d)
	// Output: [2 5 9]
}
