package repro

import (
	"repro/internal/fvs"
	"repro/internal/graphops"
	"repro/internal/pathways"
)

// The rest of the paper's graph toolkit, promoted so the application
// workflows (protein networks, phylogenetic footprinting, metabolic
// pathways) compose with the facade without importing internals.

// Union returns the edge-wise union of same-order graphs.
func Union(gs ...*Graph) *Graph { return graphops.Union(gs...) }

// Intersection returns the edge-wise intersection of same-order graphs —
// the strict consensus of noisy interaction assays.
func Intersection(gs ...*Graph) *Graph { return graphops.Intersection(gs...) }

// Difference returns the edges of a not present in b.
func Difference(a, b *Graph) *Graph { return graphops.Difference(a, b) }

// AtLeastKOfN keeps an edge present in at least k of the given graphs —
// the paper's Boolean query for cleaning high-false-positive assays.
func AtLeastKOfN(k int, gs ...*Graph) *Graph { return graphops.AtLeastKOfN(k, gs...) }

// MinimumFeedbackVertexSet returns a minimum set of vertices whose
// removal makes g acyclic — the crucial combinatorial problem of
// phylogenetic footprinting, solved exactly by the FPT branching the
// paper's toolkit provides.
func MinimumFeedbackVertexSet(g GraphInterface) []int { return fvs.Minimum(g) }

// IsFeedbackVertexSet reports whether removing set makes g acyclic.
func IsFeedbackVertexSet(g GraphInterface, set []int) bool { return fvs.IsFeedbackVertexSet(g, set) }

// MetabolicNetwork is a stoichiometric reaction network.
type MetabolicNetwork = pathways.Network

// FluxMode is one elementary flux mode (exact rational coefficients).
type FluxMode = pathways.Mode

// ElementaryFluxModes enumerates the elementary modes of net with the
// exact-arithmetic double-description tableau.
func ElementaryFluxModes(net *MetabolicNetwork) ([]FluxMode, error) {
	return pathways.ElementaryModes(net)
}

// VerifyFluxMode checks a mode against S·v = 0 and irreversibility.
func VerifyFluxMode(net *MetabolicNetwork, m FluxMode) error {
	return pathways.Verify(net, m)
}
