package repro_test

import (
	"context"
	"fmt"
	"os"

	"repro"
)

// moduleGraph builds the doctest graph: two gene modules sharing two
// genes plus overlap structure.
func moduleGraph() *repro.Graph {
	g := repro.NewGraph(7)
	for _, e := range [][2]int{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, // module {0,1,2,3}
		{3, 4}, {3, 5}, {4, 5}, {4, 6}, {5, 6}, {4, 2}, // overlap structure
	} {
		g.AddEdge(e[0], e[1])
	}
	return g
}

// The Enumerator facade: one entry point, backend chosen by options.
func ExampleEnumerator_Run() {
	g := moduleGraph()
	var st repro.Stats
	enum := repro.NewEnumerator(
		repro.WithBounds(3, 0),
		repro.WithWorkers(2), // parallel backend; same output order
		repro.WithStats(&st),
	)
	n, err := enum.Run(context.Background(), g, repro.ReporterFunc(func(c repro.Clique) {
		fmt.Println(c)
	}))
	if err != nil {
		panic(err)
	}
	fmt.Printf("total: %d on the %s backend\n", n, st.Backend)
	// Output:
	// [2 3 4]
	// [3 4 5]
	// [4 5 6]
	// [0 1 2 3]
	// total: 4 on the parallel backend
}

// Cliques streams owned copies — retain them freely, break to cancel.
func ExampleEnumerator_Cliques() {
	g := moduleGraph()
	var kept []repro.Clique
	for c, err := range repro.NewEnumerator(repro.WithBounds(4, 0)).Cliques(context.Background(), g) {
		if err != nil {
			panic(err)
		}
		kept = append(kept, c) // safe: yielded cliques are copies
	}
	fmt.Println(kept)
	// Output: [[0 1 2 3]]
}

// WithOutOfCore spills levels to disk — the paper's pre-Altix regime —
// behind the same facade, with identical output order.
func ExampleWithOutOfCore() {
	g := moduleGraph()
	dir, err := os.MkdirTemp("", "repro-ooc-example-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	var st repro.Stats
	enum := repro.NewEnumerator(
		repro.WithBounds(3, 0),
		repro.WithOutOfCore(dir, 0),
		repro.WithStats(&st),
	)
	n, err := enum.Run(context.Background(), g, repro.ReporterFunc(func(c repro.Clique) {
		fmt.Println(c)
	}))
	if err != nil {
		panic(err)
	}
	fmt.Printf("total: %d, spilled %d bytes\n", n, st.SpillBytesWritten)
	// Output:
	// [2 3 4]
	// [3 4 5]
	// [4 5 6]
	// [0 1 2 3]
	// total: 4, spilled 158 bytes
}

// Two gene modules sharing two genes: the maximal cliques are the
// modules themselves, reported smallest first.
func ExampleEnumerateMaximalCliques() {
	g := repro.NewGraph(7)
	for _, e := range [][2]int{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, // module {0,1,2,3}
		{3, 4}, {3, 5}, {4, 5}, {4, 6}, {5, 6}, {4, 2}, // overlap structure
	} {
		g.AddEdge(e[0], e[1])
	}
	n, err := repro.EnumerateMaximalCliques(g, 3, 0, func(c repro.Clique) {
		fmt.Println(c)
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("total:", n)
	// Output:
	// [2 3 4]
	// [3 4 5]
	// [4 5 6]
	// [0 1 2 3]
	// total: 4
}

func ExampleMaxCliqueSize() {
	g := repro.NewGraph(5)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}} {
		g.AddEdge(e[0], e[1])
	}
	fmt.Println(repro.MaxCliqueSize(g))
	// Output: 3
}

func ExampleParacliques() {
	g := repro.NewGraph(6)
	// K5 missing one edge, plus an attached vertex.
	for _, e := range [][2]int{
		{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {1, 3}, {1, 4},
		{2, 3}, {2, 4}, {3, 5},
	} {
		g.AddEdge(e[0], e[1])
	}
	ps := repro.Paracliques(g, 0.75)
	fmt.Printf("paracliques: %d, first has %d vertices (core %d)\n",
		len(ps), len(ps[0].Vertices), ps[0].CoreSize)
	// Output: paracliques: 1, first has 5 vertices (core 4)
}
