package repro

import (
	"io"

	"repro/internal/graph"
)

// Graph interchange, promoted from the internal graph package so
// facade users can load real data without reaching into internals.
//
// Two formats are spoken:
//
//   - plain edge list ("el"): first line "n m", then one "u v" pair per
//     line, 0-based; '#' starts a comment.
//   - DIMACS clique format: "c" comments, "p edge N M" header, "e u v"
//     lines, 1-based — the interchange format of the clique / vertex
//     cover community the paper's FPT work comes from.

// ReadEdgeList parses edge-list format into the dense representation.
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// ReadEdgeListRep parses edge-list format into the requested
// representation (Auto: density-driven choice).  Malformed input —
// truncated records, self-loops, out-of-range vertex ids, empty files —
// is an error, never a panic, for every representation.
func ReadEdgeListRep(r io.Reader, rep Representation) (GraphInterface, error) {
	return graph.ReadEdgeListRep(r, rep)
}

// WriteEdgeList writes g in edge-list format, for any representation.
func WriteEdgeList(w io.Writer, g GraphInterface) error { return graph.WriteEdgeList(w, g) }

// ReadDIMACS parses DIMACS clique format into the dense representation.
func ReadDIMACS(r io.Reader) (*Graph, error) { return graph.ReadDIMACS(r) }

// ReadDIMACSRep parses DIMACS clique format into the requested
// representation, with the same error guarantees as ReadEdgeListRep.
func ReadDIMACSRep(r io.Reader, rep Representation) (GraphInterface, error) {
	return graph.ReadDIMACSRep(r, rep)
}

// WriteDIMACS writes g in DIMACS clique format (1-based), for any
// representation.
func WriteDIMACS(w io.Writer, g GraphInterface) error { return graph.WriteDIMACS(w, g) }

// PlantClique adds every edge of the clique on the given vertices to g —
// the building block of synthetic module graphs.
func PlantClique(g *Graph, vertices []int) { graph.PlantClique(g, vertices) }
