package repro

import (
	"bufio"
	"bytes"
	"fmt"
	"io"

	"repro/internal/graph"
)

// Graph interchange, promoted from the internal graph package so
// facade users can load real data without reaching into internals.
//
// Two formats are spoken:
//
//   - plain edge list ("el"): first line "n m", then one "u v" pair per
//     line, 0-based; '#' starts a comment.
//   - DIMACS clique format: "c" comments, "p edge N M" header, "e u v"
//     lines, 1-based — the interchange format of the clique / vertex
//     cover community the paper's FPT work comes from.

// ReadEdgeList parses edge-list format into the dense representation.
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// ReadEdgeListRep parses edge-list format into the requested
// representation (Auto: density-driven choice).  Malformed input —
// truncated records, self-loops, out-of-range vertex ids, empty files —
// is an error, never a panic, for every representation.
func ReadEdgeListRep(r io.Reader, rep Representation) (GraphInterface, error) {
	return graph.ReadEdgeListRep(r, rep)
}

// WriteEdgeList writes g in edge-list format, for any representation.
func WriteEdgeList(w io.Writer, g GraphInterface) error { return graph.WriteEdgeList(w, g) }

// ReadDIMACS parses DIMACS clique format into the dense representation.
func ReadDIMACS(r io.Reader) (*Graph, error) { return graph.ReadDIMACS(r) }

// ReadDIMACSRep parses DIMACS clique format into the requested
// representation, with the same error guarantees as ReadEdgeListRep.
func ReadDIMACSRep(r io.Reader, rep Representation) (GraphInterface, error) {
	return graph.ReadDIMACSRep(r, rep)
}

// WriteDIMACS writes g in DIMACS clique format (1-based), for any
// representation.
func WriteDIMACS(w io.Writer, g GraphInterface) error { return graph.WriteDIMACS(w, g) }

// PlantClique adds every edge of the clique on the given vertices to g —
// the building block of synthetic module graphs.
func PlantClique(g *Graph, vertices []int) { graph.PlantClique(g, vertices) }

// Fingerprint returns the FNV-1a hash of g's identity (vertex count,
// edge count, canonical edge stream), independent of representation.
// It is the one graph identity the toolchain agrees on: the out-of-core
// checkpoint manifest stores it (WithResume refuses a different graph),
// the query service's registry keys loaded graphs by it, and the
// service's result cache scopes cached streams to it.
func Fingerprint(g GraphInterface) string { return graph.Fingerprint(g) }

// GraphFormat names a graph interchange format for ReadGraph.
type GraphFormat int

const (
	// FormatAuto sniffs the format from the first significant line:
	// DIMACS records start with 'c', 'p' or 'e'; everything else is
	// read as an edge list.
	FormatAuto GraphFormat = iota
	// FormatEdgeList is the plain "n m" + "u v" format.
	FormatEdgeList
	// FormatDIMACS is the 1-based DIMACS clique format.
	FormatDIMACS
)

// String names the format the way ParseGraphFormat spells it.
func (f GraphFormat) String() string {
	switch f {
	case FormatAuto:
		return "auto"
	case FormatEdgeList:
		return "edgelist"
	case FormatDIMACS:
		return "dimacs"
	}
	return fmt.Sprintf("format(%d)", int(f))
}

// ParseGraphFormat parses "auto", "edgelist" (alias "el") or "dimacs" —
// the names the cliqued format parameter and cliquer flags speak.
func ParseGraphFormat(s string) (GraphFormat, error) {
	switch s {
	case "", "auto":
		return FormatAuto, nil
	case "edgelist", "el":
		return FormatEdgeList, nil
	case "dimacs":
		return FormatDIMACS, nil
	}
	return 0, fmt.Errorf("repro: unknown graph format %q (want auto, edgelist or dimacs)", s)
}

// ReadGraph parses a graph from r in the given format into the requested
// representation, streaming — no temporary files, so a server can ingest
// an uploaded graph body directly.  FormatAuto decides by peeking at the
// first significant line, which never consumes more of r than the
// parsers themselves.  Malformed input is an error, never a panic, for
// every format and representation.
func ReadGraph(r io.Reader, format GraphFormat, rep Representation) (GraphInterface, error) {
	switch format {
	case FormatEdgeList:
		return graph.ReadEdgeListRep(r, rep)
	case FormatDIMACS:
		return graph.ReadDIMACSRep(r, rep)
	case FormatAuto:
		// Wrap once; the peeked bytes stay in the bufio.Reader, so the
		// chosen parser sees the stream from its beginning.
		br := bufio.NewReaderSize(r, 1<<16)
		if sniffDIMACS(br) {
			return graph.ReadDIMACSRep(br, rep)
		}
		return graph.ReadEdgeListRep(br, rep)
	}
	return nil, fmt.Errorf("repro: unknown graph format %v", format)
}

// sniffDIMACS reports whether the buffered stream looks like DIMACS: the
// first non-blank line starts with a DIMACS record letter ('c' comment,
// 'p' problem, 'e' edge) followed by a space or end of line.  Edge lists
// start with a digit or a '#' comment, so one significant line decides.
func sniffDIMACS(br *bufio.Reader) bool {
	peek, _ := br.Peek(1 << 16)
	for len(peek) > 0 {
		line := peek
		if i := bytes.IndexByte(peek, '\n'); i >= 0 {
			line, peek = peek[:i], peek[i+1:]
		} else {
			peek = nil
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		if line[0] == 'c' || line[0] == 'p' || line[0] == 'e' {
			return len(line) == 1 || line[1] == ' ' || line[1] == '\t'
		}
		return false
	}
	return false
}
