package repro_test

// The acceptance gates of the pluggable graph-representation layer:
//
//   - cross-representation parity: dense, CSR and WAH graphs built from
//     the same edge stream produce identical ordered clique streams
//     through Enumerator.Run across the sequential, parallel and
//     out-of-core backends, on randomized graphs;
//   - the memory win is pinned: on a synthetic sparse graph (n >= 100k,
//     average degree <= 32) the CSR footprint, by the representation's
//     own Bytes() accounting, is under 5% of the dense footprint.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro"
)

// streamRandomEdges feeds the same pseudo-random edge stream (duplicates
// and all) into a builder — the "same edge stream" premise of the parity
// gate.
func streamRandomEdges(tb testing.TB, b *repro.GraphBuilder, n, adds int, seed int64) {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < adds; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if err := b.AddEdge(u, v); err != nil {
			tb.Fatal(err)
		}
	}
}

func buildRepGraph(tb testing.TB, rep repro.Representation, n, adds int, seed int64) repro.GraphInterface {
	tb.Helper()
	b := repro.NewGraphBuilder(n).WithRepresentation(rep)
	streamRandomEdges(tb, b, n, adds, seed)
	g, err := b.Freeze()
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

func collectCliques(tb testing.TB, g repro.GraphInterface, opts ...repro.Option) []repro.Clique {
	tb.Helper()
	col := &repro.Collector{}
	if _, err := repro.NewEnumerator(opts...).Run(context.Background(), g, col); err != nil {
		tb.Fatalf("Run: %v", err)
	}
	return col.Cliques
}

func sameCliqueStreams(a, b []repro.Clique) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestRepresentationBackendParity is the ≥6-configuration parity gate:
// 3 representations × 3 execution backends (plus the barrier pool and a
// CN-mode variation below), each against the dense sequential baseline,
// over randomized graphs.
func TestRepresentationBackendParity(t *testing.T) {
	reps := []repro.Representation{repro.Dense, repro.CSR, repro.Compressed}
	for seed := int64(1); seed <= 3; seed++ {
		n := 50 + int(seed)*17
		adds := n * 6
		baseline := collectCliques(t, buildRepGraph(t, repro.Dense, n, adds, seed),
			repro.WithBounds(3, 0))
		if len(baseline) == 0 {
			t.Fatalf("seed %d: baseline found no cliques; weak test", seed)
		}
		backends := []struct {
			name string
			opts []repro.Option
		}{
			{"sequential", []repro.Option{repro.WithBounds(3, 0)}},
			{"parallel-streaming", []repro.Option{repro.WithBounds(3, 0),
				repro.WithWorkers(3), repro.WithStrategy(repro.Affinity)}},
			{"out-of-core", []repro.Option{repro.WithBounds(3, 0),
				repro.WithOutOfCore(t.TempDir(), 0)}},
		}
		for _, rep := range reps {
			g := buildRepGraph(t, rep, n, adds, seed)
			for _, be := range backends {
				t.Run(fmt.Sprintf("seed%d/%v/%s", seed, rep, be.name), func(t *testing.T) {
					got := collectCliques(t, g, be.opts...)
					if !sameCliqueStreams(baseline, got) {
						t.Errorf("clique stream diverges from dense sequential baseline (%d vs %d cliques)",
							len(got), len(baseline))
					}
				})
			}
			// CN-mode variation: the low-memory and compressed-bitmap
			// candidate modes must agree on every representation too.
			t.Run(fmt.Sprintf("seed%d/%v/lowmem", seed, rep), func(t *testing.T) {
				got := collectCliques(t, g, repro.WithBounds(3, 0), repro.WithLowMemory())
				if !sameCliqueStreams(baseline, got) {
					t.Error("low-memory clique stream diverges")
				}
			})
			t.Run(fmt.Sprintf("seed%d/%v/compressedCN", seed, rep), func(t *testing.T) {
				got := collectCliques(t, g, repro.WithBounds(3, 0), repro.WithCompressedBitmaps())
				if !sameCliqueStreams(baseline, got) {
					t.Error("compressed-CN clique stream diverges")
				}
			})
		}
	}
}

// TestRepresentationParitySeeded covers the Lo >= 3 k-clique seeding
// path (parallel seeder included) across representations.
func TestRepresentationParitySeeded(t *testing.T) {
	const n, adds, seed = 64, 800, 9
	baseline := collectCliques(t, buildRepGraph(t, repro.Dense, n, adds, seed),
		repro.WithBounds(4, 0))
	for _, rep := range []repro.Representation{repro.CSR, repro.Compressed} {
		g := buildRepGraph(t, rep, n, adds, seed)
		got := collectCliques(t, g, repro.WithBounds(4, 0))
		if !sameCliqueStreams(baseline, got) {
			t.Errorf("%v: seeded stream diverges", rep)
		}
		got = collectCliques(t, g, repro.WithBounds(4, 0), repro.WithWorkers(4))
		if !sameCliqueStreams(baseline, got) {
			t.Errorf("%v: parallel seeded stream diverges", rep)
		}
	}
}

// TestWithGraphRepresentationConverts checks the enumerator option: the
// conversion happens per run, never mutates the input, and Auto on a
// small graph picks dense.
func TestWithGraphRepresentationConverts(t *testing.T) {
	const n, adds, seed = 40, 200, 5
	dense := buildRepGraph(t, repro.Dense, n, adds, seed)
	baseline := collectCliques(t, dense, repro.WithBounds(3, 0))
	for _, rep := range []repro.Representation{repro.Auto, repro.CSR, repro.Compressed} {
		got := collectCliques(t, dense, repro.WithBounds(3, 0), repro.WithGraphRepresentation(rep))
		if !sameCliqueStreams(baseline, got) {
			t.Errorf("WithGraphRepresentation(%v): stream diverges", rep)
		}
	}
	if dense.Representation() != repro.Dense {
		t.Error("input graph was mutated by conversion")
	}
	if _, err := repro.NewEnumerator(repro.WithGraphRepresentation(repro.Representation(77))).
		Run(context.Background(), dense, nil); err == nil {
		t.Error("unknown representation accepted")
	}
}

// TestCSRMemoryWin pins the acceptance criterion: n >= 100k vertices,
// average degree <= 32, CSR adjacency footprint < 5% of the dense
// footprint by the representations' own Bytes() accounting.
func TestCSRMemoryWin(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 100k-vertex graph")
	}
	const n = 100_000
	const targetAvgDeg = 32
	b := repro.NewGraphBuilder(n).WithRepresentation(repro.CSR)
	streamRandomEdges(t, b, n, n*targetAvgDeg/2, 123)
	g, err := b.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if avg := 2 * float64(g.M()) / n; avg > targetAvgDeg {
		t.Fatalf("average degree %.1f exceeds %d; test premise broken", avg, targetAvgDeg)
	}
	denseBytes := repro.DenseAdjacencyBytes(n)
	csrBytes := g.Bytes()
	ratio := float64(csrBytes) / float64(denseBytes)
	t.Logf("n=%d m=%d: CSR %d bytes vs dense %d bytes (%.2f%%)",
		n, g.M(), csrBytes, denseBytes, 100*ratio)
	if ratio >= 0.05 {
		t.Errorf("CSR footprint is %.2f%% of dense, want < 5%%", 100*ratio)
	}
	// Auto must reach the same verdict on this shape of graph.
	b2 := repro.NewGraphBuilder(n)
	streamRandomEdges(t, b2, n, n*targetAvgDeg/2, 123)
	g2, err := b2.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if g2.Representation() != repro.CSR {
		t.Errorf("Auto picked %v for a genome-scale sparse graph", g2.Representation())
	}
}
