// Benchmarks regenerating every table and figure of the paper's
// evaluation (DESIGN.md §4).  Each benchmark runs the corresponding
// experiment at a reduced scale so the whole suite completes in minutes;
// cmd/repro runs the same code at (near-)paper scale and EXPERIMENTS.md
// records both sets of numbers.
package repro

import (
	"math/rand"
	"testing"

	"repro/internal/clique"
	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/graph"
	"repro/internal/kose"
	"repro/internal/parallel"
	"repro/internal/simarch"
)

// benchKose runs the Kose RAM baseline, counting only.
func benchKose(b *testing.B, g *graph.Graph) {
	b.Helper()
	kose.Enumerate(g, kose.Options{Reporter: clique.NewCounter()})
}

// benchCore runs the sequential Clique Enumerator, counting only.
func benchCore(b *testing.B, g *graph.Graph) {
	b.Helper()
	if _, err := core.Enumerate(g, core.Options{Reporter: clique.NewCounter()}); err != nil {
		b.Fatal(err)
	}
}

// benchCfg is the reduced-scale configuration shared by the benchmarks.
var benchCfg = expt.Config{Scale: 0.55, Seed: 1, Reps: 2, Budget: 1 << 20}

// BenchmarkMaxCliqueBounds regenerates the Section 3 maximum clique
// sizes (paper: 17 / 110 / 28).
func BenchmarkMaxCliqueBounds(b *testing.B) {
	cfg := benchCfg
	cfg.Scale = 0.3 // graph B's branch-and-bound dominates otherwise
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := expt.MaxCliqueBounds(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1KoseRAM and BenchmarkTable1CliqueEnumerator time the two
// sides of Table 1 separately (paper: 17,261 s vs 45 s, 383x); the
// combined runner asserts equal outputs.
func BenchmarkTable1KoseRAM(b *testing.B) {
	g := expt.Build(expt.SpecA.Scale(benchCfg.Scale), benchCfg.Seed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchKose(b, g)
	}
}

func BenchmarkTable1CliqueEnumerator(b *testing.B) {
	g := expt.Build(expt.SpecA.Scale(benchCfg.Scale), benchCfg.Seed)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchCore(b, g)
	}
}

// BenchmarkTable1Combined runs the full Table 1 experiment, including the
// output-equality check between the two algorithms.
func BenchmarkTable1Combined(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Table1(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Scaling regenerates Figure 5: run time vs processor count
// for the Init_K ladder on graph C (trace collection + 1..256-processor
// simulation sweep).
func BenchmarkFig5Scaling(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig5(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Speedup regenerates Figure 6 (absolute and relative
// speedups to 64 processors, Init_K ∈ {3, ladder}).
func BenchmarkFig6Speedup(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig6(benchCfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7SpeedupVsSeqTime regenerates Figure 7 (256-processor
// speedup grows with sequential run time; paper 22 -> 51).
func BenchmarkFig7SpeedupVsSeqTime(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig7(benchCfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8LoadBalance regenerates Figure 8 (per-processor busy-time
// mean ± stddev with the load balancer; paper stddev <= 10%).
func BenchmarkFig8LoadBalance(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig8(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9MemoryProfile regenerates Figure 9 (per-level candidate
// bytes across the full enumeration; paper peaks ~20 GB at k=13).
func BenchmarkFig9MemoryProfile(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Fig9(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlowupBudgetAbort regenerates the Section 3 graph-B anecdote
// (607 GB + 404 GB, terminated): budget-bounded enumeration that must
// abort.
func BenchmarkBlowupBudgetAbort(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := expt.Blowup(benchCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// skewedGraph is the streaming-vs-barrier benchmark workload: a few
// planted modules of very different sizes over sparse background noise,
// giving the skewed degree distribution (and skewed sub-list costs) on
// which one static assignment per level straggles.
func skewedGraph() *graph.Graph {
	rng := rand.New(rand.NewSource(41))
	return graph.PlantedGraph(rng, 500, []graph.PlantedCliqueSpec{
		{Size: 17}, {Size: 13, Overlap: 4}, {Size: 10}, {Size: 8, Overlap: 2},
	}, 1200)
}

// uniformGraph is the control workload: near-uniform degrees, where the
// static per-level split is already close to optimal and streaming should
// merely match it.
func uniformGraph() *graph.Graph {
	rng := rand.New(rand.NewSource(42))
	return graph.RandomGNP(rng, 340, 0.12)
}

// benchEnumerate runs one parallel backend over g with the Affinity
// strategy (the paper's) and validates the count against b.N-invariant
// expectations implicitly via error checks.
func benchEnumerate(b *testing.B, g *graph.Graph, workers int,
	enumerate func(graph.Interface, parallel.Options) (*parallel.Result, error)) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enumerate(g, parallel.Options{
			Workers:  workers,
			Strategy: parallel.Affinity,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnumerateStreamingSkewed / BenchmarkEnumerateBarrierSkewed
// compare the persistent streaming worker pool against the retained
// bulk-synchronous (one static assignment + barrier per level)
// implementation on the skewed workload, at the worker counts the
// acceptance gate names.
func BenchmarkEnumerateStreamingSkewed4(b *testing.B) {
	benchEnumerate(b, skewedGraph(), 4, parallel.Enumerate)
}

func BenchmarkEnumerateBarrierSkewed4(b *testing.B) {
	benchEnumerate(b, skewedGraph(), 4, parallel.EnumerateBarrier)
}

func BenchmarkEnumerateStreamingSkewed8(b *testing.B) {
	benchEnumerate(b, skewedGraph(), 8, parallel.Enumerate)
}

func BenchmarkEnumerateBarrierSkewed8(b *testing.B) {
	benchEnumerate(b, skewedGraph(), 8, parallel.EnumerateBarrier)
}

// Uniform control: streaming must at least match the barrier here.
func BenchmarkEnumerateStreamingUniform4(b *testing.B) {
	benchEnumerate(b, uniformGraph(), 4, parallel.Enumerate)
}

func BenchmarkEnumerateBarrierUniform4(b *testing.B) {
	benchEnumerate(b, uniformGraph(), 4, parallel.EnumerateBarrier)
}

// BenchmarkSeedFromKParallel isolates the Lo >= 3 seed phase that used to
// serialize parallel runs: sequential k-clique seeding vs the sharded
// parallel seeder.
func BenchmarkSeedFromKSequential(b *testing.B) {
	g := skewedGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.SeedFromK(g, 5, true, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSeedFromKParallel4(b *testing.B) {
	g := skewedGraph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := core.SeedFromKParallel(g, 5, core.CNStore, 4, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulate256 isolates the simulated-Altix replay cost (one
// 256-processor schedule over a collected trace).
func BenchmarkSimulate256(b *testing.B) {
	g := expt.Build(expt.SpecC.Scale(benchCfg.Scale), benchCfg.Seed)
	tr, err := simarch.Collect(g, 2, 0)
	if err != nil {
		b.Fatal(err)
	}
	m := simarch.DefaultAltix().TunedFor(float64(tr.TotalUnits))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simarch.Simulate(tr, simarch.SimOptions{
			Machine:    m,
			Processors: 256,
			Strategy:   simarch.Affinity,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
